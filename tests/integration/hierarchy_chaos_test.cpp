// Chaos-hardening of the hierarchy plane (docs/hierarchy.md "Failure
// modes"). Pins the three hardenings end to end: cold aggregator restarts
// (solicit fresh reports, hand queries to the next rank until warmed),
// early wide-flood escalation when a region's whole candidate list has gone
// silent, and the composed chaos cocktail auditing clean with zero stranded
// jobs — all exactly replayable per (seed, fault seed).
#include <gtest/gtest.h>

#include "sim/fault.hpp"
#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::proto {
namespace {

using namespace aria::literals;

workload::ScenarioConfig hier_scenario() {
  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 60;
  cfg.job_count = 80;
  cfg.aria.hierarchy.enabled = true;
  cfg.aria.hierarchy.region_count = 4;
  return cfg;
}

// ---------------------------------------------------------------------------
// Fault-free byte-identity of the chaos knobs
// ---------------------------------------------------------------------------

TEST(HierarchyChaos, WarmupKnobIsInertWithoutRestarts) {
  // The cold-start machinery arms only on the restart path: with no faults
  // there are no restarts, so even an aggressive warmup window must leave
  // the run byte-identical (and the telemetry zero).
  const workload::RunResult base = workload::run_scenario(hier_scenario(), 61);

  workload::ScenarioConfig cfg = hier_scenario();
  cfg.aria.hierarchy.aggregator_warmup = 2_h;
  const workload::RunResult r = workload::run_scenario(cfg, 61);

  EXPECT_EQ(r.region_pulls, 0u);
  EXPECT_EQ(r.region_handoffs, 0u);
  EXPECT_EQ(r.events_fired, base.events_fired);
  EXPECT_EQ(r.traffic.total().messages, base.traffic.total().messages);
  EXPECT_EQ(r.traffic.total().bytes, base.traffic.total().bytes);
}

// ---------------------------------------------------------------------------
// Cold restarts: solicit + handoff
// ---------------------------------------------------------------------------

TEST(HierarchyChaos, RestartedAggregatorsComeBackColdAndSolicit) {
  workload::ScenarioConfig cfg = hier_scenario();
  cfg.aria.failsafe = true;
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xC01D;
  cfg.faults.targeted_churn = sim::FaultConfig::TargetedChurn{};
  cfg.faults.targeted_churn->ranks = 2;

  const workload::RunResult a = workload::run_scenario(cfg, 67);
  const workload::RunResult b = workload::run_scenario(cfg, 67);

  EXPECT_GT(a.faults.restarts, 0u);
  // Every aggregator restart floods a REGION_PULL solicitation.
  EXPECT_GT(a.region_pulls, 0u);
  EXPECT_EQ(a.stranded(), 0u);
  EXPECT_TRUE(a.tracker.violations().empty());

  EXPECT_EQ(a.region_pulls, b.region_pulls);
  EXPECT_EQ(a.region_handoffs, b.region_handoffs);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

// ---------------------------------------------------------------------------
// Candidate exhaustion: primary AND every standby dead
// ---------------------------------------------------------------------------

TEST(HierarchyChaos, DeadCandidateListStillCompletesViaWideFloods) {
  // Aim the targeted plan at the *entire* candidate list of one region
  // (ranks == agg_standby) with outages far longer than the uptimes, so
  // region 1 spends most of the run with no live aggregator at all. Jobs
  // homed there must still complete: the every-4th-attempt wide flood and
  // the silence escalation bypass the dead interior, and the failsafe
  // re-floods anything lost in the gaps.
  workload::ScenarioConfig cfg = hier_scenario();
  cfg.aria.failsafe = true;
  cfg.aria.hierarchy.escalate_silent_rounds = 2;
  cfg.aria.hierarchy.silent_backoff_factor_cap = 2;
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xDEAD;
  cfg.faults.targeted_churn = sim::FaultConfig::TargetedChurn{};
  cfg.faults.targeted_churn->ranks =
      static_cast<std::uint32_t>(cfg.aria.hierarchy.agg_standby);
  cfg.faults.targeted_churn->regions = {1};
  cfg.faults.targeted_churn->mean_uptime = 10_min;
  cfg.faults.targeted_churn->mean_downtime = 3_h;

  const workload::RunResult a = workload::run_scenario(cfg, 71);
  const workload::RunResult b = workload::run_scenario(cfg, 71);

  ASSERT_TRUE(a.faults_enabled);
  EXPECT_GT(a.faults.targeted_crashes, 0u);
  // Discovery did have to route around the dead interior...
  EXPECT_GT(a.wide_floods, 0u);
  // ...and no job stranded on it.
  EXPECT_EQ(a.stranded(), 0u);
  EXPECT_TRUE(a.tracker.violations().empty());

  EXPECT_EQ(a.wide_floods, b.wide_floods);
  EXPECT_EQ(a.early_wide_escalations, b.early_wide_escalations);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

// ---------------------------------------------------------------------------
// The full cocktail, audited
// ---------------------------------------------------------------------------

TEST(HierarchyChaos, CocktailAuditsCleanAndStrandsNothing) {
  // Everything at once — aggregator-targeted churn, a region-aligned
  // partition, digest starvation via class bias, background loss — with the
  // online auditor watching every invariant. This is the small-scale twin
  // of the chaos-hier sweep preset's acceptance bar.
  workload::ScenarioConfig cfg = hier_scenario();
  cfg.aria.failsafe = true;
  cfg.aria.hierarchy.escalate_silent_rounds = 2;
  cfg.aria.hierarchy.silent_backoff_factor_cap = 2;
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xC0C7;
  cfg.faults.loss = 0.02;
  cfg.faults.targeted_churn = sim::FaultConfig::TargetedChurn{};
  cfg.faults.targeted_churn->ranks = 2;
  cfg.faults.region_partitions.push_back({2, 120_min, 60_min});
  cfg.faults.message_bias.push_back({"REGION_DIGEST", 25.0, 1.0});
  cfg.faults.message_bias.push_back({"REGION_LOAD", 25.0, 1.0});
  cfg.audit.enabled = true;

  const workload::RunResult a = workload::run_scenario(cfg, 73);
  const workload::RunResult b = workload::run_scenario(cfg, 73);

  ASSERT_TRUE(a.audit_enabled);
  EXPECT_GT(a.faults.targeted_crashes, 0u);
  EXPECT_GT(a.faults.partition_drops, 0u);
  EXPECT_EQ(a.stranded(), 0u);
  EXPECT_TRUE(a.tracker.violations().empty());
  EXPECT_EQ(a.audit_violations, 0u)
      << (a.violations.empty()
              ? std::string{}
              : a.violations[0].kind + ": " + a.violations[0].detail);

  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.audit_violations, b.audit_violations);
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

}  // namespace
}  // namespace aria::proto
