#include "grid/job.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace aria::grid {
namespace {

TEST(JobSpec, ErtOnScalesByPerformanceIndex) {
  JobSpec j;
  j.ert = Duration::hours(2);
  EXPECT_EQ(j.ert_on(1.0), Duration::hours(2));
  EXPECT_EQ(j.ert_on(2.0), Duration::hours(1));
  EXPECT_EQ(j.ert_on(1.5), Duration::minutes(80));
}

TEST(JobSpec, DeadlinePresence) {
  JobSpec j;
  EXPECT_FALSE(j.has_deadline());
  j.deadline = TimePoint::origin() + Duration::hours(5);
  EXPECT_TRUE(j.has_deadline());
}

TEST(ErtErrorModel, ExactModeReturnsErtp) {
  ErtErrorModel model{ErtErrorMode::kExact, 0.1};
  Rng rng{1};
  const Duration ert = Duration::hours(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.actual_running_time(ert, 2.0, rng), Duration::hours(1));
  }
}

TEST(ErtErrorModel, SymmetricModeBoundsDrift) {
  ErtErrorModel model{ErtErrorMode::kSymmetric, 0.1};
  Rng rng{2};
  const Duration ert = Duration::hours(2);
  const Duration ertp = ert.scaled(1.0 / 1.5);
  const Duration max_drift = ert.scaled(0.1);
  for (int i = 0; i < 10000; ++i) {
    const Duration art = model.actual_running_time(ert, 1.5, rng);
    EXPECT_GE(art, ertp - max_drift);
    EXPECT_LE(art, ertp + max_drift);
  }
}

TEST(ErtErrorModel, SymmetricModeIsCenteredOnErtp) {
  ErtErrorModel model{ErtErrorMode::kSymmetric, 0.25};
  Rng rng{3};
  const Duration ert = Duration::hours(3);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(model.actual_running_time(ert, 1.0, rng).to_seconds());
  }
  EXPECT_NEAR(stats.mean(), ert.to_seconds(), ert.to_seconds() * 0.01);
}

TEST(ErtErrorModel, OptimisticModeNeverUndershoots) {
  // AccuracyBad: the estimate is always lower than reality.
  ErtErrorModel model{ErtErrorMode::kOptimistic, 0.1};
  Rng rng{4};
  const Duration ert = Duration::hours(2);
  const Duration ertp = ert.scaled(1.0 / 1.3);
  bool strictly_above = false;
  for (int i = 0; i < 10000; ++i) {
    const Duration art = model.actual_running_time(ert, 1.3, rng);
    ASSERT_GE(art, ertp);
    if (art > ertp) strictly_above = true;
  }
  EXPECT_TRUE(strictly_above);
}

TEST(ErtErrorModel, NeverReturnsNonPositive) {
  // Pathological: epsilon so large the drift could exceed ERTp.
  ErtErrorModel model{ErtErrorMode::kSymmetric, 5.0};
  Rng rng{5};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(model.actual_running_time(Duration::minutes(10), 2.0, rng),
              Duration::seconds(1));
  }
}

TEST(ErtErrorModel, ZeroEpsilonSymmetricEqualsExact) {
  ErtErrorModel model{ErtErrorMode::kSymmetric, 0.0};
  Rng rng{6};
  EXPECT_EQ(model.actual_running_time(Duration::hours(1), 1.0, rng),
            Duration::hours(1));
}

TEST(JobSpec, ToStringMentionsKeyFields) {
  Rng rng{7};
  JobSpec j;
  j.id = JobId::generate(rng);
  j.ert = Duration::hours(2);
  const std::string s = j.to_string();
  EXPECT_NE(s.find("ert=2h00m"), std::string::npos);
  EXPECT_NE(s.find(j.id.to_string().substr(0, 8)), std::string::npos);
  EXPECT_EQ(s.find("deadline"), std::string::npos);
  j.deadline = TimePoint::origin() + Duration::hours(4);
  EXPECT_NE(j.to_string().find("deadline=4h00m"), std::string::npos);
}

}  // namespace
}  // namespace aria::grid
