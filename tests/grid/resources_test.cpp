#include "grid/resources.hpp"

#include <gtest/gtest.h>

namespace aria::grid {
namespace {

NodeProfile base_profile() {
  NodeProfile p;
  p.arch = Architecture::kAmd64;
  p.os = OperatingSystem::kLinux;
  p.memory_gb = 8;
  p.disk_gb = 4;
  p.performance_index = 1.5;
  return p;
}

JobRequirements base_req() {
  JobRequirements r;
  r.arch = Architecture::kAmd64;
  r.os = OperatingSystem::kLinux;
  r.min_memory_gb = 4;
  r.min_disk_gb = 2;
  return r;
}

TEST(Satisfies, ExactMatch) {
  EXPECT_TRUE(satisfies(base_profile(), base_req()));
}

TEST(Satisfies, ArchitectureMustMatchExactly) {
  auto req = base_req();
  req.arch = Architecture::kPower;
  EXPECT_FALSE(satisfies(base_profile(), req));
}

TEST(Satisfies, OsMustMatchExactly) {
  auto req = base_req();
  req.os = OperatingSystem::kSolaris;
  EXPECT_FALSE(satisfies(base_profile(), req));
}

TEST(Satisfies, MemoryIsMinimum) {
  auto req = base_req();
  req.min_memory_gb = 8;
  EXPECT_TRUE(satisfies(base_profile(), req));  // equal is enough
  req.min_memory_gb = 16;
  EXPECT_FALSE(satisfies(base_profile(), req));
  req.min_memory_gb = 1;
  EXPECT_TRUE(satisfies(base_profile(), req));
}

TEST(Satisfies, DiskIsMinimum) {
  auto req = base_req();
  req.min_disk_gb = 4;
  EXPECT_TRUE(satisfies(base_profile(), req));
  req.min_disk_gb = 8;
  EXPECT_FALSE(satisfies(base_profile(), req));
}

TEST(Satisfies, VirtualOrgConstraint) {
  auto req = base_req();
  EXPECT_TRUE(satisfies(base_profile(), req, "cern"));  // unconstrained job
  req.virtual_org = "cern";
  EXPECT_TRUE(satisfies(base_profile(), req, "cern"));
  EXPECT_FALSE(satisfies(base_profile(), req, "desy"));
  EXPECT_FALSE(satisfies(base_profile(), req, ""));
}

TEST(Satisfies, AllArchOsPairsOnlyDiagonalMatches) {
  constexpr Architecture archs[] = {Architecture::kAmd64, Architecture::kPower,
                                    Architecture::kIa64, Architecture::kSparc,
                                    Architecture::kMips, Architecture::kNec};
  for (Architecture pa : archs) {
    for (Architecture ra : archs) {
      auto p = base_profile();
      p.arch = pa;
      auto r = base_req();
      r.arch = ra;
      EXPECT_EQ(satisfies(p, r), pa == ra);
    }
  }
}

TEST(ToString, AllArchitecturesNamed) {
  EXPECT_EQ(to_string(Architecture::kAmd64), "AMD64");
  EXPECT_EQ(to_string(Architecture::kPower), "POWER");
  EXPECT_EQ(to_string(Architecture::kIa64), "IA-64");
  EXPECT_EQ(to_string(Architecture::kSparc), "SPARC");
  EXPECT_EQ(to_string(Architecture::kMips), "MIPS");
  EXPECT_EQ(to_string(Architecture::kNec), "NEC");
}

TEST(ToString, AllOperatingSystemsNamed) {
  EXPECT_EQ(to_string(OperatingSystem::kLinux), "LINUX");
  EXPECT_EQ(to_string(OperatingSystem::kSolaris), "SOLARIS");
  EXPECT_EQ(to_string(OperatingSystem::kUnix), "UNIX");
  EXPECT_EQ(to_string(OperatingSystem::kWindows), "WINDOWS");
  EXPECT_EQ(to_string(OperatingSystem::kBsd), "BSD");
}

TEST(ToString, ProfileAndRequirementsRender) {
  EXPECT_EQ(base_profile().to_string(), "AMD64/LINUX mem=8G disk=4G p=1.5");
  EXPECT_EQ(base_req().to_string(), "AMD64/LINUX mem>=4G disk>=2G");
  auto r = base_req();
  r.virtual_org = "cern";
  EXPECT_EQ(r.to_string(), "AMD64/LINUX mem>=4G disk>=2G vo=cern");
}

}  // namespace
}  // namespace aria::grid
