#include "grid/profile_gen.hpp"

#include <gtest/gtest.h>

#include <map>

namespace aria::grid {
namespace {

constexpr int kDraws = 200000;

TEST(ProfileGen, ArchitectureDistributionMatchesTop500Table) {
  Rng rng{1};
  std::map<Architecture, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[random_architecture(rng)];
  auto share = [&](Architecture a) {
    return counts[a] / static_cast<double>(kDraws);
  };
  EXPECT_NEAR(share(Architecture::kAmd64), 0.872, 0.005);
  EXPECT_NEAR(share(Architecture::kPower), 0.110, 0.005);
  EXPECT_NEAR(share(Architecture::kIa64), 0.012, 0.002);
  EXPECT_NEAR(share(Architecture::kSparc), 0.002, 0.001);
  EXPECT_NEAR(share(Architecture::kMips), 0.002, 0.001);
  EXPECT_NEAR(share(Architecture::kNec), 0.002, 0.001);
}

TEST(ProfileGen, OsDistributionMatchesTop500Table) {
  Rng rng{2};
  std::map<OperatingSystem, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[random_os(rng)];
  auto share = [&](OperatingSystem os) {
    return counts[os] / static_cast<double>(kDraws);
  };
  EXPECT_NEAR(share(OperatingSystem::kLinux), 0.886, 0.005);
  EXPECT_NEAR(share(OperatingSystem::kSolaris), 0.058, 0.003);
  EXPECT_NEAR(share(OperatingSystem::kUnix), 0.044, 0.003);
  EXPECT_NEAR(share(OperatingSystem::kWindows), 0.010, 0.002);
  EXPECT_NEAR(share(OperatingSystem::kBsd), 0.002, 0.001);
}

TEST(ProfileGen, CapacityIsUniformOverPowersOfTwo) {
  Rng rng{3};
  std::map<int, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[random_capacity_gb(rng)];
  ASSERT_EQ(counts.size(), 5u);
  for (int cap : {1, 2, 4, 8, 16}) {
    EXPECT_NEAR(counts[cap] / static_cast<double>(kDraws), 0.2, 0.01)
        << "capacity " << cap;
  }
}

TEST(ProfileGen, PerformanceIndexInPaperRange) {
  Rng rng{4};
  double lo = 10.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const NodeProfile p = random_node_profile(rng);
    ASSERT_GE(p.performance_index, 1.0);
    ASSERT_LE(p.performance_index, 2.0);
    lo = std::min(lo, p.performance_index);
    hi = std::max(hi, p.performance_index);
  }
  EXPECT_LT(lo, 1.05);  // the whole range is exercised
  EXPECT_GT(hi, 1.95);
}

TEST(ProfileGen, JobRequirementsUseSameDistributions) {
  Rng rng{5};
  int amd64 = 0;
  for (int i = 0; i < kDraws; ++i) {
    const JobRequirements r = random_job_requirements(rng);
    if (r.arch == Architecture::kAmd64) ++amd64;
    ASSERT_TRUE(r.min_memory_gb == 1 || r.min_memory_gb == 2 ||
                r.min_memory_gb == 4 || r.min_memory_gb == 8 ||
                r.min_memory_gb == 16);
    ASSERT_TRUE(r.virtual_org.empty());
  }
  EXPECT_NEAR(amd64 / static_cast<double>(kDraws), 0.872, 0.005);
}

TEST(ProfileGen, TypicalJobMatchesAReasonableShareOfNodes) {
  // Sanity check on the emergent match probability the protocol relies on:
  // a random job should match a nontrivial fraction of random nodes.
  Rng rng{6};
  std::vector<NodeProfile> nodes;
  for (int i = 0; i < 500; ++i) nodes.push_back(random_node_profile(rng));
  int total_matches = 0;
  constexpr int kJobs = 200;
  for (int j = 0; j < kJobs; ++j) {
    const JobRequirements r = random_job_requirements(rng);
    for (const NodeProfile& p : nodes) {
      if (satisfies(p, r)) ++total_matches;
    }
  }
  const double mean_matches = total_matches / static_cast<double>(kJobs);
  EXPECT_GT(mean_matches, 50.0);   // enough candidates for meta-scheduling
  EXPECT_LT(mean_matches, 350.0);  // but matching is selective
}

TEST(ProfileGen, DeterministicForSeed) {
  Rng a{7}, b{7};
  for (int i = 0; i < 100; ++i) {
    const NodeProfile pa = random_node_profile(a);
    const NodeProfile pb = random_node_profile(b);
    EXPECT_EQ(pa.arch, pb.arch);
    EXPECT_EQ(pa.os, pb.os);
    EXPECT_EQ(pa.memory_gb, pb.memory_gb);
    EXPECT_EQ(pa.disk_gb, pb.disk_gb);
    EXPECT_DOUBLE_EQ(pa.performance_index, pb.performance_index);
  }
}

}  // namespace
}  // namespace aria::grid
