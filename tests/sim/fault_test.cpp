#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/latency.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace aria::sim {
namespace {

using namespace aria::literals;

struct CloneableMsg final : Message {
  int payload;
  explicit CloneableMsg(int p) : payload{p} {}
  std::size_t wire_size() const override { return 100; }
  std::unique_ptr<Message> clone() const override {
    return std::make_unique<CloneableMsg>(*this);
  }
  MessageTypeId type_id() const override {
    static const MessageTypeId id = MessageTypeRegistry::intern("CLONEABLE");
    return id;
  }
};

struct OpaqueMsg final : Message {
  std::size_t wire_size() const override { return 100; }
  MessageTypeId type_id() const override {
    static const MessageTypeId id = MessageTypeRegistry::intern("OPAQUE");
    return id;
  }
};

// Interned id the direct on_send tests pass for an unbiased message class.
MessageTypeId test_type() {
  static const MessageTypeId id = MessageTypeRegistry::intern("FAULT_TEST");
  return id;
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(FaultPlane, SameSeedSameVerdictSequence) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 99;
  cfg.loss = 0.2;
  cfg.duplicate = 0.1;
  cfg.spike = 0.1;

  FaultPlane a{cfg}, b{cfg};
  for (int i = 0; i < 2000; ++i) {
    const NodeId from{static_cast<std::uint32_t>(i % 7)};
    const NodeId to{static_cast<std::uint32_t>(i % 11)};
    const TimePoint now = TimePoint::origin() + Duration::seconds(i);
    const auto va = a.on_send(from, to, test_type(), now);
    const auto vb = b.on_send(from, to, test_type(), now);
    ASSERT_EQ(va.drop, vb.drop) << i;
    ASSERT_EQ(va.duplicate, vb.duplicate) << i;
    ASSERT_EQ(va.duplicate_lag, vb.duplicate_lag) << i;
    ASSERT_EQ(va.extra_delay, vb.extra_delay) << i;
  }
  EXPECT_EQ(a.counters().lost, b.counters().lost);
  EXPECT_EQ(a.counters().duplicated, b.counters().duplicated);
  EXPECT_EQ(a.counters().delayed, b.counters().delayed);
}

TEST(FaultPlane, DifferentSeedsDiverge) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.loss = 0.3;
  cfg.seed = 1;
  FaultPlane a{cfg};
  cfg.seed = 2;
  FaultPlane b{cfg};
  int disagreements = 0;
  for (int i = 0; i < 500; ++i) {
    const auto va = a.on_send(NodeId{1}, NodeId{2}, test_type(), TimePoint::origin());
    const auto vb = b.on_send(NodeId{1}, NodeId{2}, test_type(), TimePoint::origin());
    if (va.drop != vb.drop) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultPlane, LossRateIsRoughlyHonored) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 7;
  cfg.loss = 0.1;
  FaultPlane plane{cfg};
  const int n = 20000;
  int dropped = 0;
  for (int i = 0; i < n; ++i) {
    if (plane.on_send(NodeId{1}, NodeId{2}, test_type(), TimePoint::origin()).drop) {
      ++dropped;
    }
  }
  const double rate = static_cast<double>(dropped) / n;
  EXPECT_NEAR(rate, 0.1, 0.02);
  EXPECT_EQ(plane.counters().lost, static_cast<std::uint64_t>(dropped));
}

TEST(FaultPlane, ZeroRatesProduceNoFaults) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 5;
  FaultPlane plane{cfg};
  for (int i = 0; i < 1000; ++i) {
    const auto v = plane.on_send(NodeId{1}, NodeId{2}, test_type(), TimePoint::origin());
    ASSERT_FALSE(v.drop);
    ASSERT_FALSE(v.duplicate);
    ASSERT_TRUE(v.extra_delay.is_zero());
  }
  EXPECT_EQ(plane.counters().injected_drops(), 0u);
}

// ---------------------------------------------------------------------------
// Partitions
// ---------------------------------------------------------------------------

FaultConfig partition_config() {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 11;
  cfg.partitions.push_back(
      FaultConfig::Partition{.start = 10_min, .duration = 5_min,
                             .fraction = 0.5});
  return cfg;
}

TEST(FaultPlane, PartitionSidesAreDeterministicAndBothPopulated) {
  FaultPlane a{partition_config()}, b{partition_config()};
  int minority = 0;
  for (std::uint32_t n = 0; n < 200; ++n) {
    ASSERT_EQ(a.minority_side(0, NodeId{n}), b.minority_side(0, NodeId{n}));
    if (a.minority_side(0, NodeId{n})) ++minority;
  }
  // fraction 0.5: both sides should hold a healthy share of 200 nodes.
  EXPECT_GT(minority, 50);
  EXPECT_LT(minority, 150);
}

TEST(FaultPlane, PartitionBlocksOnlyCrossSideAndOnlyDuringWindow) {
  FaultPlane plane{partition_config()};
  // Find one node on each side.
  NodeId in_minority{}, in_majority{};
  for (std::uint32_t n = 0; n < 200; ++n) {
    if (plane.minority_side(0, NodeId{n})) {
      in_minority = NodeId{n};
    } else {
      in_majority = NodeId{n};
    }
    if (in_minority.valid() && in_majority.valid()) break;
  }
  ASSERT_TRUE(in_minority.valid() && in_majority.valid());

  const TimePoint before = TimePoint::origin() + 9_min;
  const TimePoint inside = TimePoint::origin() + 12_min;
  const TimePoint after = TimePoint::origin() + 16_min;

  EXPECT_FALSE(plane.partitioned(in_minority, in_majority, before));
  EXPECT_TRUE(plane.partitioned(in_minority, in_majority, inside));
  EXPECT_TRUE(plane.partitioned(in_majority, in_minority, inside));
  EXPECT_FALSE(plane.partitioned(in_minority, in_majority, after));
  // Same side passes even mid-window.
  EXPECT_FALSE(plane.partitioned(in_majority, in_majority, inside));

  const auto v = plane.on_send(in_minority, in_majority, test_type(), inside);
  EXPECT_TRUE(v.drop);
  EXPECT_TRUE(v.partitioned);
  EXPECT_EQ(plane.counters().partition_drops, 1u);
  EXPECT_EQ(plane.counters().lost, 0u);
}

// ---------------------------------------------------------------------------
// Through the network
// ---------------------------------------------------------------------------

std::unique_ptr<Network> make_net(Simulator& sim) {
  return std::make_unique<Network>(
      sim, std::make_unique<FixedLatencyModel>(10_ms), Rng{1});
}

TEST(NetworkFaults, InjectedLossCountsAsFaultedNotDropped) {
  Simulator sim;
  auto net = make_net(sim);
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 3;
  cfg.loss = 1.0;
  FaultPlane plane{cfg};
  net->set_fault_plane(&plane);

  int received = 0;
  net->attach(NodeId{2}, [&](Envelope) { ++received; });
  net->send(NodeId{1}, NodeId{2}, std::make_unique<CloneableMsg>(0));
  // Injected loss is decided at send time, before the destination is even
  // examined — so it also claims messages that would have dropped
  // organically at delivery.
  net->send(NodeId{1}, NodeId{9}, std::make_unique<CloneableMsg>(0));
  // Only with the plane detached does the unattached destination produce an
  // organic drop at delivery time.
  net->set_fault_plane(nullptr);
  net->send(NodeId{1}, NodeId{9}, std::make_unique<CloneableMsg>(0));
  sim.run();

  EXPECT_EQ(received, 0);
  EXPECT_EQ(net->faulted_messages(), 2u);
  EXPECT_EQ(net->dropped_messages(), 1u);
  EXPECT_EQ(net->traffic().faulted("CLONEABLE"), 2u);
  EXPECT_EQ(net->traffic().drops("CLONEABLE"), 1u);
  // All three sends were metered: bytes hit the wire either way.
  EXPECT_EQ(net->traffic().of("CLONEABLE").messages, 3u);
}

TEST(NetworkFaults, DuplicationDeliversTwiceAndLagsTheCopy) {
  Simulator sim;
  auto net = make_net(sim);
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 4;
  cfg.duplicate = 1.0;
  FaultPlane plane{cfg};
  net->set_fault_plane(&plane);

  std::vector<TimePoint> deliveries;
  net->attach(NodeId{2}, [&](Envelope env) {
    EXPECT_EQ(dynamic_cast<const CloneableMsg&>(*env.message).payload, 42);
    deliveries.push_back(sim.now());
  });
  net->send(NodeId{1}, NodeId{2}, std::make_unique<CloneableMsg>(42));
  sim.run();

  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], TimePoint::origin() + 10_ms);
  EXPECT_GT(deliveries[1], deliveries[0]);
  EXPECT_EQ(net->duplicated_messages(), 1u);
  EXPECT_EQ(net->delivered_messages(), 2u);
  // The metered send count stays 1: duplication is a delivery artifact.
  EXPECT_EQ(net->traffic().of("CLONEABLE").messages, 1u);
}

TEST(NetworkFaults, NonCloneableMessagesAreNeverDuplicated) {
  Simulator sim;
  auto net = make_net(sim);
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 4;
  cfg.duplicate = 1.0;
  FaultPlane plane{cfg};
  net->set_fault_plane(&plane);

  int received = 0;
  net->attach(NodeId{2}, [&](Envelope) { ++received; });
  net->send(NodeId{1}, NodeId{2}, std::make_unique<OpaqueMsg>());
  sim.run();

  EXPECT_EQ(received, 1);
  EXPECT_EQ(net->duplicated_messages(), 0u);
}

TEST(NetworkFaults, SpikeDelaysDelivery) {
  Simulator sim;
  auto net = make_net(sim);
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 6;
  cfg.spike = 1.0;
  cfg.spike_min = 1_s;
  cfg.spike_max = 2_s;
  FaultPlane plane{cfg};
  net->set_fault_plane(&plane);

  TimePoint delivered;
  net->attach(NodeId{2}, [&](Envelope) { delivered = sim.now(); });
  net->send(NodeId{1}, NodeId{2}, std::make_unique<CloneableMsg>(0));
  sim.run();

  EXPECT_GE(delivered, TimePoint::origin() + 10_ms + 1_s);
  EXPECT_LE(delivered, TimePoint::origin() + 10_ms + 2_s);
  EXPECT_EQ(plane.counters().delayed, 1u);
}

TEST(NetworkFaults, EnabledPlaneWithZeroRatesIsByteIdenticalToNoPlane) {
  // The regression the whole design hangs on: an attached-but-quiet plane
  // must not shift a single delivery, because zero-probability faults
  // consume no RNG draws.
  auto deliveries_with = [](FaultPlane* plane) {
    Simulator sim;
    Network net{sim, std::make_unique<GeoLatencyModel>(), Rng{42}};
    if (plane != nullptr) net.set_fault_plane(plane);
    std::vector<std::int64_t> times;
    net.attach(NodeId{2}, [&](Envelope) {
      times.push_back(sim.now().count_micros());
    });
    for (int i = 0; i < 500; ++i) {
      net.send(NodeId{1}, NodeId{2}, std::make_unique<CloneableMsg>(i));
    }
    sim.run();
    return times;
  };

  FaultConfig cfg;
  cfg.enabled = true;  // master switch on, every rate zero
  cfg.seed = 1234;
  FaultPlane quiet{cfg};

  EXPECT_EQ(deliveries_with(nullptr), deliveries_with(&quiet));
  EXPECT_EQ(quiet.counters().injected_drops(), 0u);
}

TEST(TrafficLedgerFaults, FaultedAndDropsStaySeparate) {
  TrafficLedger ledger;
  ledger.record("X", 10);
  ledger.record_drop("X");
  ledger.record_fault("X");
  ledger.record_fault("X");
  EXPECT_EQ(ledger.drops("X"), 1u);
  EXPECT_EQ(ledger.faulted("X"), 2u);
  EXPECT_EQ(ledger.total_drops(), 1u);
  EXPECT_EQ(ledger.total_faulted(), 2u);

  TrafficLedger other;
  other.record_fault("X");
  ledger.merge(other);
  EXPECT_EQ(ledger.faulted("X"), 3u);
  EXPECT_EQ(ledger.drops("X"), 1u);
}

}  // namespace
}  // namespace aria::sim
