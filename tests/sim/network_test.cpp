#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace aria::sim {
namespace {

using namespace aria::literals;

struct TestMsg final : Message {
  int payload;
  explicit TestMsg(int p) : payload{p} {}
  std::size_t wire_size() const override { return 100; }
  MessageTypeId type_id() const override {
    static const MessageTypeId id = MessageTypeRegistry::intern("TEST");
    return id;
  }
};

struct BigMsg final : Message {
  std::size_t wire_size() const override { return 4096; }
  MessageTypeId type_id() const override {
    static const MessageTypeId id = MessageTypeRegistry::intern("BIG");
    return id;
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : net_{sim_, std::make_unique<FixedLatencyModel>(10_ms), Rng{1}} {}

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, DeliversToAttachedHandler) {
  std::vector<int> received;
  net_.attach(NodeId{2}, [&](Envelope env) {
    received.push_back(dynamic_cast<const TestMsg&>(*env.message).payload);
    EXPECT_EQ(env.from, NodeId{1});
    EXPECT_EQ(env.to, NodeId{2});
  });
  net_.send(NodeId{1}, NodeId{2}, std::make_unique<TestMsg>(42));
  sim_.run();
  EXPECT_EQ(received, (std::vector<int>{42}));
}

TEST_F(NetworkTest, DeliveryTakesLatency) {
  TimePoint delivered;
  net_.attach(NodeId{2}, [&](Envelope) { delivered = sim_.now(); });
  net_.send(NodeId{1}, NodeId{2}, std::make_unique<TestMsg>(0));
  sim_.run();
  EXPECT_EQ(delivered, TimePoint::origin() + 10_ms);
}

TEST_F(NetworkTest, UnattachedDestinationDropsAndCounts) {
  net_.send(NodeId{1}, NodeId{99}, std::make_unique<TestMsg>(0));
  sim_.run();
  EXPECT_EQ(net_.dropped_messages(), 1u);
  EXPECT_EQ(net_.delivered_messages(), 0u);
  EXPECT_EQ(net_.traffic().drops("TEST"), 1u);
  // Bytes still hit the wire.
  EXPECT_EQ(net_.traffic().of("TEST").bytes, 100u);
}

TEST_F(NetworkTest, DownNodeDropsUntilBackUp) {
  int received = 0;
  net_.attach(NodeId{2}, [&](Envelope) { ++received; });
  net_.set_up(NodeId{2}, false);
  net_.send(NodeId{1}, NodeId{2}, std::make_unique<TestMsg>(0));
  sim_.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net_.dropped_messages(), 1u);

  net_.set_up(NodeId{2}, true);
  net_.send(NodeId{1}, NodeId{2}, std::make_unique<TestMsg>(0));
  sim_.run();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkTest, CrashBetweenSendAndDeliveryDrops) {
  int received = 0;
  net_.attach(NodeId{2}, [&](Envelope) { ++received; });
  net_.send(NodeId{1}, NodeId{2}, std::make_unique<TestMsg>(0));
  // The message is in flight; the destination goes down before delivery.
  net_.set_up(NodeId{2}, false);
  sim_.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net_.dropped_messages(), 1u);
}

TEST_F(NetworkTest, DetachStopsDelivery) {
  int received = 0;
  net_.attach(NodeId{2}, [&](Envelope) { ++received; });
  net_.detach(NodeId{2});
  EXPECT_FALSE(net_.is_attached(NodeId{2}));
  net_.send(NodeId{1}, NodeId{2}, std::make_unique<TestMsg>(0));
  sim_.run();
  EXPECT_EQ(received, 0);
}

TEST_F(NetworkTest, TrafficLedgerAccumulatesByType) {
  net_.attach(NodeId{2}, [](Envelope) {});
  net_.send(NodeId{1}, NodeId{2}, std::make_unique<TestMsg>(0));
  net_.send(NodeId{1}, NodeId{2}, std::make_unique<TestMsg>(0));
  net_.send(NodeId{1}, NodeId{2}, std::make_unique<BigMsg>());
  sim_.run();
  EXPECT_EQ(net_.traffic().of("TEST").messages, 2u);
  EXPECT_EQ(net_.traffic().of("TEST").bytes, 200u);
  EXPECT_EQ(net_.traffic().of("BIG").messages, 1u);
  EXPECT_EQ(net_.traffic().of("BIG").bytes, 4096u);
  EXPECT_EQ(net_.traffic().total().messages, 3u);
  EXPECT_EQ(net_.traffic().total().bytes, 4296u);
}

TEST_F(NetworkTest, SentAndDeliveredCounters) {
  net_.attach(NodeId{2}, [](Envelope) {});
  for (int i = 0; i < 5; ++i) {
    net_.send(NodeId{1}, NodeId{2}, std::make_unique<TestMsg>(i));
  }
  sim_.run();
  EXPECT_EQ(net_.sent_messages(), 5u);
  EXPECT_EQ(net_.delivered_messages(), 5u);
  EXPECT_EQ(net_.dropped_messages(), 0u);
}

TEST_F(NetworkTest, FifoBetweenSamePairUnderFixedLatency) {
  std::vector<int> received;
  net_.attach(NodeId{2}, [&](Envelope env) {
    received.push_back(dynamic_cast<const TestMsg&>(*env.message).payload);
  });
  for (int i = 0; i < 10; ++i) {
    net_.send(NodeId{1}, NodeId{2}, std::make_unique<TestMsg>(i));
  }
  sim_.run();
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST_F(NetworkTest, ReattachReplacesHandler) {
  int first = 0, second = 0;
  net_.attach(NodeId{2}, [&](Envelope) { ++first; });
  net_.attach(NodeId{2}, [&](Envelope) { ++second; });
  net_.send(NodeId{1}, NodeId{2}, std::make_unique<TestMsg>(0));
  sim_.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(NetworkStress, ThousandsOfMessagesDeliveredExactlyOnce) {
  Simulator sim;
  Network net{sim, std::make_unique<GeoLatencyModel>(), Rng{77}};
  constexpr std::uint32_t kNodes = 50;
  std::vector<int> received(kNodes, 0);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    net.attach(NodeId{i}, [&received, i](Envelope) { ++received[i]; });
  }
  Rng rng{78};
  constexpr int kMessages = 10000;
  std::vector<int> expected(kNodes, 0);
  for (int m = 0; m < kMessages; ++m) {
    const auto from = static_cast<std::uint32_t>(rng.uniform_int(0, kNodes - 1));
    const auto to = static_cast<std::uint32_t>(rng.uniform_int(0, kNodes - 1));
    ++expected[to];
    net.send(NodeId{from}, NodeId{to}, std::make_unique<TestMsg>(m));
  }
  sim.run();
  EXPECT_EQ(net.delivered_messages(), static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(net.dropped_messages(), 0u);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(received[i], expected[i]) << "node " << i;
  }
  EXPECT_EQ(net.traffic().of("TEST").messages,
            static_cast<std::uint64_t>(kMessages));
}

TEST(NetworkStress, JitteredLatencyCanReorderSamePairMessages) {
  // Documents why the protocol must tolerate reordering: per-message jitter
  // makes the network non-FIFO even between one pair of nodes.
  Simulator sim;
  Network net{sim, std::make_unique<GeoLatencyModel>(), Rng{79}};
  std::vector<int> order;
  net.attach(NodeId{2}, [&order](Envelope env) {
    order.push_back(dynamic_cast<const TestMsg&>(*env.message).payload);
  });
  for (int i = 0; i < 200; ++i) {
    net.send(NodeId{1}, NodeId{2}, std::make_unique<TestMsg>(i));
  }
  sim.run();
  ASSERT_EQ(order.size(), 200u);
  bool reordered = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(TrafficLedger, MergeAndClear) {
  TrafficLedger a, b;
  a.record("X", 10);
  b.record("X", 5);
  b.record("Y", 7);
  b.record_drop("Y");
  a.merge(b);
  EXPECT_EQ(a.of("X").messages, 2u);
  EXPECT_EQ(a.of("X").bytes, 15u);
  EXPECT_EQ(a.of("Y").bytes, 7u);
  EXPECT_EQ(a.drops("Y"), 1u);
  a.clear();
  EXPECT_EQ(a.total().messages, 0u);
  EXPECT_EQ(a.of("X").bytes, 0u);
}

}  // namespace
}  // namespace aria::sim
