#include "sim/latency.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace aria::sim {
namespace {

TEST(FixedLatencyModel, AlwaysReturnsConstant) {
  FixedLatencyModel model{Duration::millis(25)};
  Rng rng{1};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.latency(NodeId{1}, NodeId{2}, rng), Duration::millis(25));
  }
}

TEST(GeoLatencyModel, PositionsAreDeterministicAndInUnitSquare) {
  GeoLatencyModel model;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    double x1, y1, x2, y2;
    model.position(NodeId{i}, x1, y1);
    model.position(NodeId{i}, x2, y2);
    EXPECT_DOUBLE_EQ(x1, x2);
    EXPECT_DOUBLE_EQ(y1, y2);
    EXPECT_GE(x1, 0.0);
    EXPECT_LT(x1, 1.0);
    EXPECT_GE(y1, 0.0);
    EXPECT_LT(y1, 1.0);
  }
}

TEST(GeoLatencyModel, DifferentSeedsMoveNodes) {
  GeoLatencyModel a{GeoLatencyModel::Params{.seed = 1}};
  GeoLatencyModel b{GeoLatencyModel::Params{.seed = 2}};
  int identical = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    double ax, ay, bx, by;
    a.position(NodeId{i}, ax, ay);
    b.position(NodeId{i}, bx, by);
    if (ax == bx && ay == by) ++identical;
  }
  EXPECT_EQ(identical, 0);
}

TEST(GeoLatencyModel, LatencyWithinModelBounds) {
  GeoLatencyModel::Params p;
  GeoLatencyModel model{p};
  Rng rng{7};
  const Duration min_possible = p.base;
  const Duration max_possible = (p.base + p.span).scaled(1.0 + p.jitter_fraction);
  for (std::uint32_t i = 0; i < 200; ++i) {
    const Duration d = model.latency(NodeId{i}, NodeId{i + 1}, rng);
    EXPECT_GE(d, min_possible);
    EXPECT_LE(d, max_possible);
  }
}

TEST(GeoLatencyModel, DeterministicPartIsSymmetric) {
  GeoLatencyModel::Params p;
  p.jitter_fraction = 0.0;  // strip jitter to observe the base + distance part
  GeoLatencyModel model{p};
  Rng rng{11};
  for (std::uint32_t i = 0; i < 100; ++i) {
    const NodeId a{i}, b{i * 7 + 3};
    EXPECT_EQ(model.latency(a, b, rng), model.latency(b, a, rng));
  }
}

TEST(GeoLatencyModel, SelfLatencyIsBase) {
  GeoLatencyModel::Params p;
  p.jitter_fraction = 0.0;
  GeoLatencyModel model{p};
  Rng rng{13};
  EXPECT_EQ(model.latency(NodeId{5}, NodeId{5}, rng), p.base);
}

TEST(GeoLatencyModel, JitterVariesPerMessage) {
  GeoLatencyModel model;
  Rng rng{17};
  RunningStats stats;
  for (int i = 0; i < 100; ++i) {
    stats.add(model.latency(NodeId{1}, NodeId{2}, rng).to_seconds());
  }
  EXPECT_GT(stats.stddev(), 0.0);  // jitter makes repeated sends differ
  EXPECT_GT(stats.max(), stats.min());
}

TEST(GeoLatencyModel, RealisticWideAreaRange) {
  // Defaults should produce one-way delays in the 5-90 ms ballpark.
  GeoLatencyModel model;
  Rng rng{19};
  RunningStats stats;
  for (std::uint32_t i = 0; i < 500; ++i) {
    stats.add(model.latency(NodeId{i}, NodeId{1000 + i}, rng).to_seconds());
  }
  EXPECT_GE(stats.min(), 0.005);
  EXPECT_LE(stats.max(), 0.090);
  EXPECT_GT(stats.mean(), 0.01);
}

}  // namespace
}  // namespace aria::sim
