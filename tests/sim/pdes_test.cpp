// Unit tests for the sharded-PDES building blocks (docs/pdes.md): the SPSC
// channel's FIFO-across-spill contract, the stateless shard map, the
// kernel's keyed same-instant ordering, the canonical send journal, and the
// conservative executor's ordering invariant on toy simulations.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/spsc.hpp"
#include "sim/latency.hpp"
#include "sim/network.hpp"
#include "sim/pdes/channel.hpp"
#include "sim/pdes/executor.hpp"
#include "sim/pdes/journal.hpp"
#include "sim/pdes/shard_map.hpp"
#include "sim/simulator.hpp"

namespace aria::sim::pdes {
namespace {

using aria::literals::operator""_ms;
using aria::literals::operator""_s;
using aria::literals::operator""_us;

// ---------------------------------------------------------------------------
// SpscChannel
// ---------------------------------------------------------------------------

TEST(SpscChannel, DrainsInPushOrder) {
  SpscChannel<int> ch{8};
  for (int i = 0; i < 6; ++i) ch.push(i);
  std::vector<int> got;
  EXPECT_EQ(ch.drain([&](int&& v) { got.push_back(v); }), 6u);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_TRUE(ch.empty());
}

TEST(SpscChannel, OverflowPreservesFifoAcrossTheSpill) {
  SpscChannel<int> ch{4};  // ring capacity 4
  // 10 pushes: 4 fit the ring, 6 spill. Order must survive the boundary.
  for (int i = 0; i < 10; ++i) ch.push(i);
  EXPECT_EQ(ch.overflow_count(), 6u);
  std::vector<int> got;
  EXPECT_EQ(ch.drain([&](int&& v) { got.push_back(v); }), 10u);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(SpscChannel, OnceOverflowedLaterPushesFollowUntilDrain) {
  SpscChannel<int> ch{2};
  for (int i = 0; i < 3; ++i) ch.push(i);  // 2 ring + 1 overflow
  // The ring has space again only logically — push 3 must chase push 2 into
  // the overflow lane or it would overtake it at drain time.
  ch.push(3);
  std::vector<int> got;
  ch.drain([&](int&& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
  // After a drain the fast path is restored.
  ch.push(42);
  EXPECT_EQ(ch.overflow_count(), 2u);
  got.clear();
  ch.drain([&](int&& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{42}));
}

TEST(SpscChannel, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscChannel<int>{5}.ring_capacity(), 8u);
  EXPECT_EQ(SpscChannel<int>{1}.ring_capacity(), 2u);
}

// ---------------------------------------------------------------------------
// ShardMap
// ---------------------------------------------------------------------------

TEST(ShardMap, FlatPartitionRoundRobinsNodeIds) {
  const ShardMap map{.shards = 4, .region_count = 0};
  EXPECT_EQ(map.shard_of(NodeId{0}), 0u);
  EXPECT_EQ(map.shard_of(NodeId{5}), 1u);
  EXPECT_EQ(map.shard_of(NodeId{7}), 3u);
}

TEST(ShardMap, RegionAlignedPartitionKeepsARegionOnOneShard) {
  const ShardMap map{.shards = 3, .region_count = 8};
  // All members of region r = id mod 8 must land on the same shard.
  for (std::uint32_t r = 0; r < 8; ++r) {
    const std::size_t owner = map.shard_of(NodeId{r});
    for (std::uint32_t id = r; id < 200; id += 8) {
      EXPECT_EQ(map.shard_of(NodeId{id}), owner) << "node " << id;
    }
  }
}

TEST(ShardMap, SingleShardOwnsEverything) {
  const ShardMap map{.shards = 1, .region_count = 6};
  for (std::uint32_t id = 0; id < 64; ++id) {
    EXPECT_EQ(map.shard_of(NodeId{id}), 0u);
  }
}

// ---------------------------------------------------------------------------
// Keyed same-instant ordering (Simulator::schedule_at_keyed)
// ---------------------------------------------------------------------------

TEST(KeyedScheduling, SameInstantEventsFireInKeyOrderNotScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = TimePoint::from_micros(100);
  // Scheduled high key first: scheduling order must lose to key order.
  sim.schedule_at_keyed(t, 30, [&] { order.push_back(30); });
  sim.schedule_at_keyed(t, 10, [&] { order.push_back(10); });
  sim.schedule_at_keyed(t, 20, [&] { order.push_back(20); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(KeyedScheduling, KeyZeroFiresBeforeAnyKeyedDelivery) {
  Simulator sim;
  std::vector<std::string> order;
  const TimePoint t = TimePoint::from_micros(50);
  sim.schedule_at_keyed(t, 7, [&] { order.push_back("delivery"); });
  sim.schedule_at(t, [&] { order.push_back("timer"); });  // key 0, later seq
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"timer", "delivery"}));
}

TEST(KeyedScheduling, TimeStillDominatesKey) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at_keyed(TimePoint::from_micros(200), 1,
                        [&] { order.push_back(2); });
  sim.schedule_at_keyed(TimePoint::from_micros(100), 99,
                        [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(KeyedScheduling, EqualKeysFallBackToScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = TimePoint::from_micros(10);
  sim.schedule_at_keyed(t, 5, [&] { order.push_back(1); });
  sim.schedule_at_keyed(t, 5, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Network delivery keys
// ---------------------------------------------------------------------------

struct Ping final : Message {
  static MessageTypeId type() {
    static const MessageTypeId id = MessageTypeRegistry::intern("PDES_PING");
    return id;
  }
  std::size_t wire_size() const override { return 8; }
  MessageTypeId type_id() const override { return type(); }
};

TEST(DeliveryKeys, SameInstantDeliveriesFireInSenderSeqOrder) {
  // Two senders whose messages land on the same recipient at the same
  // microsecond (fixed latency, simultaneous sends). Whatever order the
  // sends were issued in, delivery order must be (sender id, send seq).
  Simulator sim;
  Network net{sim, std::make_unique<FixedLatencyModel>(5_ms), Rng{1}};
  std::vector<std::uint32_t> arrivals;
  net.attach(NodeId{1}, [](Envelope) {});
  net.attach(NodeId{2}, [](Envelope) {});
  net.attach(NodeId{9}, [&](Envelope e) { arrivals.push_back(e.from.value()); });
  // Higher-id sender sends first; key order must still deliver n1 first.
  sim.schedule_at(TimePoint::from_micros(100), [&] {
    net.send(NodeId{2}, NodeId{9}, std::make_unique<Ping>());
    net.send(NodeId{1}, NodeId{9}, std::make_unique<Ping>());
  });
  sim.run();
  EXPECT_EQ(arrivals, (std::vector<std::uint32_t>{1, 2}));
}

// ---------------------------------------------------------------------------
// EventJournal / merge_journals / first_divergence
// ---------------------------------------------------------------------------

JournalEntry entry(std::int64_t sent_us, std::uint32_t from, std::uint32_t to,
                   std::uint64_t seq) {
  JournalEntry e;
  e.sent = TimePoint::from_micros(sent_us);
  e.from = NodeId{from};
  e.to = NodeId{to};
  e.type = Ping::type();
  e.deliver = TimePoint::from_micros(sent_us + 5000);
  e.sender_seq = seq;
  return e;
}

TEST(Journal, RecordsEverySendWithPerSenderSeq) {
  Simulator sim;
  Network net{sim, std::make_unique<FixedLatencyModel>(5_ms), Rng{1}};
  EventJournal journal;
  net.set_tap(&journal, 1);
  net.attach(NodeId{1}, [](Envelope) {});
  net.attach(NodeId{2}, [](Envelope) {});
  sim.schedule_at(TimePoint::from_micros(10), [&] {
    net.send(NodeId{1}, NodeId{2}, std::make_unique<Ping>());
    net.send(NodeId{1}, NodeId{2}, std::make_unique<Ping>());
    net.send(NodeId{2}, NodeId{1}, std::make_unique<Ping>());
  });
  sim.run();
  ASSERT_EQ(journal.entries().size(), 3u);
  EXPECT_EQ(journal.entries()[0].sender_seq, 0u);
  EXPECT_EQ(journal.entries()[1].sender_seq, 1u);  // same sender, next seq
  EXPECT_EQ(journal.entries()[2].sender_seq, 0u);  // new sender, fresh seq
  EXPECT_FALSE(journal.entries()[0].faulted);
  EXPECT_EQ(journal.entries()[0].deliver - journal.entries()[0].sent, 5_ms);
}

TEST(Journal, MergeSortsCanonicallyAcrossShards) {
  // Two "shards" whose interleaving differs from canonical order.
  EventJournal a;
  EventJournal b;
  Simulator sim_a;
  Simulator sim_b;
  Network net_a{sim_a, std::make_unique<FixedLatencyModel>(5_ms), Rng{1}};
  Network net_b{sim_b, std::make_unique<FixedLatencyModel>(5_ms), Rng{1}};
  net_a.set_tap(&a, 1);
  net_b.set_tap(&b, 1);
  net_a.attach(NodeId{4}, [](Envelope) {});
  net_b.attach(NodeId{3}, [](Envelope) {});
  // Shard A: node 4 sends at t=20. Shard B: node 3 sends at t=20 and t=10.
  sim_a.schedule_at(TimePoint::from_micros(20), [&] {
    net_a.send(NodeId{4}, NodeId{4}, std::make_unique<Ping>());
  });
  sim_b.schedule_at(TimePoint::from_micros(10), [&] {
    net_b.send(NodeId{3}, NodeId{3}, std::make_unique<Ping>());
  });
  sim_b.schedule_at(TimePoint::from_micros(20), [&] {
    net_b.send(NodeId{3}, NodeId{3}, std::make_unique<Ping>());
  });
  sim_a.run();
  sim_b.run();
  const auto merged = merge_journals({&a, &b});
  ASSERT_EQ(merged.size(), 3u);
  // (sent, from, seq): t=10 n3 first, then t=20 n3, then t=20 n4.
  EXPECT_EQ(merged[0].sent.count_micros(), 10);
  EXPECT_EQ(merged[0].from, NodeId{3});
  EXPECT_EQ(merged[1].sent.count_micros(), 20);
  EXPECT_EQ(merged[1].from, NodeId{3});
  EXPECT_EQ(merged[2].from, NodeId{4});
}

TEST(Divergence, IdenticalJournalsReportNothing) {
  const std::vector<JournalEntry> j{entry(10, 1, 2, 0), entry(20, 1, 3, 1)};
  EXPECT_FALSE(first_divergence(j, j).has_value());
}

TEST(Divergence, NamesTheFirstMismatchingEvent) {
  const std::vector<JournalEntry> expected{entry(10, 1, 2, 0),
                                           entry(20, 1, 3, 1)};
  std::vector<JournalEntry> actual = expected;
  actual[1].to = NodeId{7};  // diverges at index 1
  const auto d = first_divergence(expected, actual);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->index, 1u);
  EXPECT_NE(d->description.find("n1 -> n3"), std::string::npos)
      << d->description;
  EXPECT_NE(d->description.find("n1 -> n7"), std::string::npos)
      << d->description;
}

TEST(Divergence, ReportsLengthMismatch) {
  const std::vector<JournalEntry> expected{entry(10, 1, 2, 0),
                                           entry(20, 1, 3, 1)};
  const std::vector<JournalEntry> actual{entry(10, 1, 2, 0)};
  const auto d = first_divergence(expected, actual);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->index, 1u);
}

// ---------------------------------------------------------------------------
// ShardExecutor on toy simulations
// ---------------------------------------------------------------------------

/// Two shards, one node each, fixed 5 ms latency (= lookahead). Nodes
/// ping-pong across the shard boundary a fixed number of times.
struct ToyFabric {
  static constexpr std::size_t kShards = 2;
  ShardMap map{.shards = kShards, .region_count = 0};
  Simulator engine;
  std::vector<std::unique_ptr<Simulator>> sims;
  std::unique_ptr<ChannelMatrix> channels;
  std::vector<std::unique_ptr<ShardRoute>> routes;
  std::vector<std::unique_ptr<Network>> nets;

  ToyFabric() {
    channels = std::make_unique<ChannelMatrix>(kShards);
    for (std::size_t i = 0; i < kShards; ++i) {
      sims.push_back(std::make_unique<Simulator>());
      nets.push_back(std::make_unique<Network>(
          *sims.back(), std::make_unique<FixedLatencyModel>(5_ms), Rng{1}));
      routes.push_back(std::make_unique<ShardRoute>(map, i, *channels));
      nets.back()->set_remote_route(routes.back().get());
    }
  }

  ShardExecutor::Stats run(TimePoint horizon) {
    ShardExecutor::Config cfg;
    cfg.lookahead = 5_ms;
    cfg.horizon = horizon;
    std::vector<Simulator*> raw_sims;
    std::vector<Network*> raw_nets;
    for (auto& s : sims) raw_sims.push_back(s.get());
    for (auto& n : nets) raw_nets.push_back(n.get());
    ShardExecutor exec{std::move(raw_sims), engine, *channels,
                       std::move(raw_nets), cfg};
    return exec.run();
  }
};

TEST(ShardExecutor, PingPongCrossesShardsAtExactLatency) {
  ToyFabric f;
  // Node 0 on shard 0, node 1 on shard 1.
  std::vector<std::int64_t> arrivals;  // at node 1, in micros
  int remaining = 5;
  f.nets[0]->attach(NodeId{0}, [&](Envelope e) {
    if (remaining-- > 0) {
      f.nets[0]->send(NodeId{0}, NodeId{1}, std::make_unique<Ping>());
    }
    (void)e;
  });
  f.nets[1]->attach(NodeId{1}, [&](Envelope) {
    arrivals.push_back(f.sims[1]->now().count_micros());
    f.nets[1]->send(NodeId{1}, NodeId{0}, std::make_unique<Ping>());
  });
  f.sims[0]->schedule_at(TimePoint::from_micros(0), [&] {
    f.nets[0]->send(NodeId{0}, NodeId{1}, std::make_unique<Ping>());
  });
  const auto stats = f.run(TimePoint::origin() + 1_s);
  // First arrival at 5 ms, then every 10 ms (one round trip).
  ASSERT_EQ(arrivals.size(), 6u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i], 5000 + static_cast<std::int64_t>(i) * 10000);
  }
  EXPECT_EQ(stats.messages_forwarded, 12u);  // 6 pings + 6 pongs
  EXPECT_GT(stats.windows, 0u);
}

TEST(ShardExecutor, SameInstantCrossShardDeliveriesHonorSenderKeyOrder) {
  // Senders 0 and 2 live on shard 0, recipient 1 on shard 1. Both send at
  // the same instant with equal fixed latency, so both deliveries land at
  // the same microsecond on shard 1 — and must fire in sender-id order
  // (the delivery key), not channel-drain or scheduling order.
  ToyFabric f;
  std::vector<std::uint32_t> arrivals;
  f.nets[0]->attach(NodeId{0}, [](Envelope) {});
  f.nets[0]->attach(NodeId{2}, [](Envelope) {});
  f.nets[1]->attach(NodeId{1},
                    [&](Envelope e) { arrivals.push_back(e.from.value()); });
  f.sims[0]->schedule_at(TimePoint::from_micros(100), [&] {
    // Issue the higher-id sender's message first.
    f.nets[0]->send(NodeId{2}, NodeId{1}, std::make_unique<Ping>());
    f.nets[0]->send(NodeId{0}, NodeId{1}, std::make_unique<Ping>());
  });
  f.run(TimePoint::origin() + 1_s);
  EXPECT_EQ(arrivals, (std::vector<std::uint32_t>{0, 2}));
}

TEST(ShardExecutor, EngineEventsInterleaveAtTheirExactInstant) {
  // An engine-plane event between two shard events must observe the first
  // and precede the second (the serial rendezvous).
  ToyFabric f;
  std::vector<std::string> order;
  f.nets[0]->attach(NodeId{0}, [](Envelope) {});
  f.sims[0]->schedule_at(TimePoint::from_micros(100),
                         [&] { order.push_back("shard@100"); });
  f.engine.schedule_at(TimePoint::from_micros(150),
                       [&] { order.push_back("engine@150"); });
  f.sims[0]->schedule_at(TimePoint::from_micros(200),
                         [&] { order.push_back("shard@200"); });
  const auto stats = f.run(TimePoint::origin() + 1_s);
  EXPECT_EQ(order, (std::vector<std::string>{"shard@100", "engine@150",
                                             "shard@200"}));
  EXPECT_GE(stats.engine_phases, 1u);
  EXPECT_EQ(stats.engine_events, 1u);
  EXPECT_EQ(stats.shard_events, 2u);
}

TEST(ShardExecutor, ClocksLandExactlyOnTheHorizon) {
  ToyFabric f;
  f.nets[0]->attach(NodeId{0}, [](Envelope) {});
  f.sims[0]->schedule_at(TimePoint::from_micros(100), [] {});
  const TimePoint horizon = TimePoint::origin() + 1_s;
  f.run(horizon);
  EXPECT_EQ(f.engine.now(), horizon);
  for (auto& s : f.sims) EXPECT_EQ(s->now(), horizon);
}

}  // namespace
}  // namespace aria::sim::pdes
