#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/rng.hpp"

namespace aria::sim {
namespace {

using namespace aria::literals;

TEST(Simulator, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(30_s, [&] { order.push_back(3); });
  sim.schedule_after(10_s, [&] { order.push_back(1); });
  sim.schedule_after(20_s, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameInstantFiresInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(5_s, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_after(42_s, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::origin() + 42_s);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 42_s);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(-(5_s), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), TimePoint::origin());
}

TEST(Simulator, PastAbsoluteTimeClampsToNow) {
  Simulator sim;
  sim.schedule_after(10_s, [] {});
  sim.run();
  bool fired = false;
  sim.schedule_at(TimePoint::origin() + 1_s, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 10_s);  // never goes backward
}

TEST(Simulator, EventsScheduledDuringEventsFire) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(1_s, recurse);
  };
  sim.schedule_after(1_s, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 5_s);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_after(10_s, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.schedule_after(1_s, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_after(10_s, [&] { fired.push_back(1); });
  sim.schedule_after(20_s, [&] { fired.push_back(2); });
  sim.schedule_after(30_s, [&] { fired.push_back(3); });
  sim.run_until(TimePoint::origin() + 20_s);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));  // deadline event fires
  EXPECT_EQ(sim.now(), TimePoint::origin() + 20_s);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilAdvancesClockToDeadlineWhenQueueEmpty) {
  Simulator sim;
  sim.run_until(TimePoint::origin() + 1_h);
  EXPECT_EQ(sim.now(), TimePoint::origin() + 1_h);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  int count = 0;
  sim.schedule_periodic(0_s, 10_s, [&] { ++count; });
  sim.run_until(TimePoint::origin() + 55_s);
  EXPECT_EQ(count, 6);  // t = 0, 10, 20, 30, 40, 50
}

TEST(Simulator, PeriodicPhaseOffset) {
  Simulator sim;
  std::vector<TimePoint> at;
  sim.schedule_periodic(3_s, 10_s, [&] { at.push_back(sim.now()); });
  sim.run_until(TimePoint::origin() + 25_s);
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], TimePoint::origin() + 3_s);
  EXPECT_EQ(at[1], TimePoint::origin() + 13_s);
  EXPECT_EQ(at[2], TimePoint::origin() + 23_s);
}

TEST(Simulator, PeriodicCancelStopsSeries) {
  Simulator sim;
  int count = 0;
  EventHandle h = sim.schedule_periodic(0_s, 10_s, [&] { ++count; });
  sim.run_until(TimePoint::origin() + 25_s);
  EXPECT_EQ(count, 3);
  h.cancel();
  sim.run_until(TimePoint::origin() + 100_s);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicCancelFromInsideCallback) {
  Simulator sim;
  int count = 0;
  EventHandle h;
  h = sim.schedule_periodic(0_s, 10_s, [&] {
    if (++count == 3) h.cancel();
  });
  sim.run_until(TimePoint::origin() + 1_h);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_after(1_s, [&] { ++count; });
  sim.schedule_after(2_s, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, StopRequestEndsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_after(Duration::seconds(i), [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Simulator, FiredEventsCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_after(1_s, [] {});
  sim.run();
  EXPECT_EQ(sim.fired_events(), 5u);
}

TEST(Simulator, CancelDuringDispatchOfEarlierEvent) {
  // An event firing at t may cancel another event still queued — including
  // one scheduled for the very same instant.
  Simulator sim;
  bool later_fired = false;
  bool same_instant_fired = false;
  EventHandle later = sim.schedule_after(20_s, [&] { later_fired = true; });
  sim.schedule_after(10_s, [&] { later.cancel(); });
  EventHandle same;
  sim.schedule_after(30_s, [&] { same.cancel(); });
  same = sim.schedule_after(30_s, [&] { same_instant_fired = true; });
  sim.run();
  EXPECT_FALSE(later_fired);
  EXPECT_FALSE(same_instant_fired);
  EXPECT_EQ(sim.fired_events(), 2u);
}

TEST(Simulator, CancelInsideOwnCallbackIsNoOp) {
  Simulator sim;
  int fired = 0;
  EventHandle h;
  h = sim.schedule_after(1_s, [&] {
    ++fired;
    h.cancel();  // already firing: must not corrupt the slot
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  // The slot is recyclable afterwards.
  bool again = false;
  sim.schedule_after(1_s, [&] { again = true; });
  sim.run();
  EXPECT_TRUE(again);
}

TEST(Simulator, PeriodicSelfCancelFreesSlotForReuse) {
  Simulator sim;
  int count = 0;
  EventHandle h;
  h = sim.schedule_periodic(0_s, 1_s, [&] {
    if (++count == 2) h.cancel();
  });
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(h.pending());
  const std::size_t slots = sim.slab_slots();
  // A new event must recycle the freed slot, not grow the slab.
  sim.schedule_after(1_s, [] {});
  EXPECT_EQ(sim.slab_slots(), slots);
  sim.run();
}

TEST(Simulator, CancelledPendingCountsAndLazySkip) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(sim.schedule_after(Duration::seconds(i + 1), [] {}));
  }
  EXPECT_EQ(sim.cancelled_pending(), 0u);
  for (int i = 0; i < 4; ++i) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(sim.cancelled_pending(), 4u);  // below threshold: no compaction
  EXPECT_EQ(sim.compactions(), 0u);
  EXPECT_EQ(sim.pending_events(), 6u);  // live events only
  sim.run();
  EXPECT_EQ(sim.fired_events(), 6u);
  EXPECT_EQ(sim.cancelled_pending(), 0u);  // dead entries skipped on pop
}

TEST(Simulator, CompactionTriggersOnMassCancel) {
  Simulator sim;
  std::vector<EventHandle> handles;
  constexpr int kEvents = 300;
  for (int i = 0; i < kEvents; ++i) {
    handles.push_back(sim.schedule_after(Duration::seconds(i + 1), [] {}));
  }
  // Cancel all but every 10th: dead entries dominate -> heap compaction.
  int live = 0;
  for (int i = 0; i < kEvents; ++i) {
    if (i % 10 == 0) {
      ++live;
      continue;
    }
    handles[static_cast<std::size_t>(i)].cancel();
  }
  EXPECT_GE(sim.compactions(), 1u);
  EXPECT_LT(sim.cancelled_pending(), 64u);  // swept below the threshold
  EXPECT_EQ(sim.pending_events(), static_cast<std::size_t>(live));
  sim.run();
  EXPECT_EQ(sim.fired_events(), static_cast<std::uint64_t>(live));
}

TEST(Simulator, HandleInertAfterGenerationBump) {
  Simulator sim;
  bool old_fired = false;
  bool new_fired = false;
  EventHandle old = sim.schedule_after(10_s, [&] { old_fired = true; });
  old.cancel();
  // The freed slot is recycled by the next schedule; the stale handle's
  // generation no longer matches, so it can neither observe nor cancel the
  // new event.
  EventHandle fresh = sim.schedule_after(5_s, [&] { new_fired = true; });
  EXPECT_EQ(sim.slab_slots(), 1u);  // same slot, new generation
  EXPECT_FALSE(old.pending());
  EXPECT_TRUE(fresh.pending());
  old.cancel();  // must not kill the recycled event
  sim.run();
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
}

TEST(Simulator, PeekReturnsNextLiveEventTime) {
  Simulator sim;
  EXPECT_FALSE(sim.peek().has_value());
  EventHandle first = sim.schedule_after(5_s, [] {});
  sim.schedule_after(10_s, [] {});
  ASSERT_TRUE(sim.peek().has_value());
  EXPECT_EQ(*sim.peek(), TimePoint::origin() + 5_s);
  first.cancel();
  ASSERT_TRUE(sim.peek().has_value());  // dead top pruned
  EXPECT_EQ(*sim.peek(), TimePoint::origin() + 10_s);
  EXPECT_EQ(sim.cancelled_pending(), 0u);
  sim.run();
  EXPECT_FALSE(sim.peek().has_value());
}

TEST(Simulator, PeriodicReArmDoesNotGrowSlab) {
  Simulator sim;
  int count = 0;
  sim.schedule_periodic(0_s, 1_s, [&] { ++count; });
  sim.run_until(TimePoint::origin() + Duration::seconds(500));
  EXPECT_EQ(count, 501);
  EXPECT_EQ(sim.slab_slots(), 1u);  // one slot recycled every tick
}

TEST(Simulator, MoveOnlyCaptureInCallback) {
  // UniqueCallback accepts move-only closures (the network captures the
  // envelope's unique_ptr directly).
  Simulator sim;
  auto payload = std::make_unique<int>(7);
  int seen = 0;
  sim.schedule_after(1_s,
                     [p = std::move(payload), &seen] { seen = *p; });
  sim.run();
  EXPECT_EQ(seen, 7);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  TimePoint last = TimePoint::origin();
  bool monotonic = true;
  Rng rng{99};
  for (int i = 0; i < 10000; ++i) {
    sim.schedule_after(rng.uniform_duration(0_s, 1_h), [&] {
      if (sim.now() < last) monotonic = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(sim.fired_events(), 10000u);
}

}  // namespace
}  // namespace aria::sim
