#include "overlay/blatant.hpp"

#include <gtest/gtest.h>

#include "overlay/bootstrap.hpp"

namespace aria::overlay {
namespace {

TEST(Blatant, ConvergePreservesConnectivity) {
  Rng rng{1};
  Topology t = bootstrap_random(300, 4.0, rng);
  BlatantMaintainer m{t, BlatantParams{}, rng.fork(1)};
  m.converge(60, 3);
  EXPECT_TRUE(t.connected());
}

TEST(Blatant, KeepsAveragePathLengthBounded) {
  Rng rng{2};
  Topology t = bootstrap_random(400, 4.0, rng);
  BlatantParams p;
  BlatantMaintainer m{t, p, rng.fork(1)};
  m.converge(60, 3);
  EXPECT_LE(t.average_path_length(), static_cast<double>(p.alpha));
}

TEST(Blatant, RespectsDegreeFloor) {
  Rng rng{3};
  Topology t = bootstrap_random(300, 6.0, rng);
  BlatantParams p;
  BlatantMaintainer m{t, p, rng.fork(1)};
  m.converge(80, 3);
  // Pruning must never take a node below min_degree unless it started there.
  for (NodeId node : t.nodes()) {
    EXPECT_GE(t.degree(node), 2u);  // ring bootstrap guarantees >= 2 initially
  }
  EXPECT_GE(t.average_degree(), static_cast<double>(p.min_degree) * 0.8);
}

TEST(Blatant, PrunesOverProvisionedGraph) {
  Rng rng{4};
  Topology t = bootstrap_random(200, 10.0, rng);  // way too many links
  const std::size_t before = t.link_count();
  BlatantMaintainer m{t, BlatantParams{}, rng.fork(1)};
  m.converge(80, 3);
  EXPECT_LT(t.link_count(), before);
  EXPECT_TRUE(t.connected());
  EXPECT_GT(m.stats().links_removed, 0u);
}

TEST(Blatant, RepairsStretchedTopology) {
  // A long path graph violates the alpha bound badly; discovery ants must
  // add shortcuts.
  Rng rng{5};
  Topology t;
  for (std::uint32_t i = 0; i < 99; ++i) {
    t.add_link(NodeId{i}, NodeId{i + 1});
  }
  const double before = t.average_path_length();
  BlatantParams p;
  p.walk_length = 30;  // let ants reach far nodes on the path
  BlatantMaintainer m{t, p, rng.fork(1)};
  m.converge(120, 5);
  EXPECT_GT(m.stats().links_added, 0u);
  EXPECT_LT(t.average_path_length(), before);
  EXPECT_TRUE(t.connected());
}

TEST(Blatant, DiscoveryAntNoOpOnIsolatedNode) {
  Rng rng{6};
  Topology t;
  t.add_node(NodeId{0});
  BlatantMaintainer m{t, BlatantParams{}, rng};
  m.discovery_ant(NodeId{0});
  EXPECT_EQ(t.link_count(), 0u);
}

TEST(Blatant, PruningAntKeepsSmallGraphsIntact) {
  Rng rng{7};
  Topology t;
  t.add_link(NodeId{0}, NodeId{1});
  t.add_link(NodeId{1}, NodeId{2});
  BlatantMaintainer m{t, BlatantParams{}, rng};
  for (int i = 0; i < 50; ++i) {
    m.pruning_ant(NodeId{0});
    m.pruning_ant(NodeId{1});
  }
  EXPECT_EQ(t.link_count(), 2u);  // degrees are at/below the floor
}

TEST(Blatant, NeverDisconnectsUnderHeavyPruning) {
  Rng rng{8};
  Topology t = bootstrap_random(150, 8.0, rng);
  BlatantParams p;
  p.pruning_rate = 1.0;
  p.discovery_rate = 0.0;
  BlatantMaintainer m{t, p, rng.fork(1)};
  for (int round = 0; round < 30; ++round) {
    m.tick();
    ASSERT_TRUE(t.connected()) << "disconnected after round " << round;
  }
}

TEST(Blatant, StatsCountAnts) {
  Rng rng{9};
  Topology t = bootstrap_random(50, 4.0, rng);
  BlatantParams p;
  p.discovery_rate = 1.0;
  p.pruning_rate = 1.0;
  BlatantMaintainer m{t, p, rng.fork(1)};
  m.tick();
  EXPECT_EQ(m.stats().discovery_ants, 50u);
  EXPECT_EQ(m.stats().pruning_ants, 50u);
}

TEST(Blatant, IntegratesJoinedNodes) {
  Rng rng{10};
  Topology t = bootstrap_random(100, 4.0, rng);
  BlatantMaintainer m{t, BlatantParams{}, rng.fork(1)};
  m.converge(40, 3);
  for (std::uint32_t i = 100; i < 150; ++i) {
    join_node(t, NodeId{i}, 2, rng);
  }
  m.converge(40, 3);
  EXPECT_TRUE(t.connected());
  EXPECT_LE(t.average_path_length(), static_cast<double>(m.params().alpha));
}

}  // namespace
}  // namespace aria::overlay
