#include "overlay/blatant.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "overlay/bootstrap.hpp"

namespace aria::overlay {
namespace {

TEST(Blatant, ConvergePreservesConnectivity) {
  Rng rng{1};
  Topology t = bootstrap_random(300, 4.0, rng);
  BlatantMaintainer m{t, BlatantParams{}, rng.fork(1)};
  m.converge(60, 3);
  EXPECT_TRUE(t.connected());
}

TEST(Blatant, KeepsAveragePathLengthBounded) {
  Rng rng{2};
  Topology t = bootstrap_random(400, 4.0, rng);
  BlatantParams p;
  BlatantMaintainer m{t, p, rng.fork(1)};
  m.converge(60, 3);
  EXPECT_LE(t.average_path_length(), static_cast<double>(p.alpha));
}

TEST(Blatant, RespectsDegreeFloor) {
  Rng rng{3};
  Topology t = bootstrap_random(300, 6.0, rng);
  BlatantParams p;
  BlatantMaintainer m{t, p, rng.fork(1)};
  m.converge(80, 3);
  // Pruning must never take a node below min_degree unless it started there.
  for (NodeId node : t.nodes()) {
    EXPECT_GE(t.degree(node), 2u);  // ring bootstrap guarantees >= 2 initially
  }
  EXPECT_GE(t.average_degree(), static_cast<double>(p.min_degree) * 0.8);
}

TEST(Blatant, PrunesOverProvisionedGraph) {
  Rng rng{4};
  Topology t = bootstrap_random(200, 10.0, rng);  // way too many links
  const std::size_t before = t.link_count();
  BlatantMaintainer m{t, BlatantParams{}, rng.fork(1)};
  m.converge(80, 3);
  EXPECT_LT(t.link_count(), before);
  EXPECT_TRUE(t.connected());
  EXPECT_GT(m.stats().links_removed, 0u);
}

TEST(Blatant, RepairsStretchedTopology) {
  // A long path graph violates the alpha bound badly; discovery ants must
  // add shortcuts.
  Rng rng{5};
  Topology t;
  for (std::uint32_t i = 0; i < 99; ++i) {
    t.add_link(NodeId{i}, NodeId{i + 1});
  }
  const double before = t.average_path_length();
  BlatantParams p;
  p.walk_length = 30;  // let ants reach far nodes on the path
  BlatantMaintainer m{t, p, rng.fork(1)};
  m.converge(120, 5);
  EXPECT_GT(m.stats().links_added, 0u);
  EXPECT_LT(t.average_path_length(), before);
  EXPECT_TRUE(t.connected());
}

TEST(Blatant, DiscoveryAntNoOpOnIsolatedNode) {
  Rng rng{6};
  Topology t;
  t.add_node(NodeId{0});
  BlatantMaintainer m{t, BlatantParams{}, rng};
  m.discovery_ant(NodeId{0});
  EXPECT_EQ(t.link_count(), 0u);
}

TEST(Blatant, PruningAntKeepsSmallGraphsIntact) {
  Rng rng{7};
  Topology t;
  t.add_link(NodeId{0}, NodeId{1});
  t.add_link(NodeId{1}, NodeId{2});
  BlatantMaintainer m{t, BlatantParams{}, rng};
  for (int i = 0; i < 50; ++i) {
    m.pruning_ant(NodeId{0});
    m.pruning_ant(NodeId{1});
  }
  EXPECT_EQ(t.link_count(), 2u);  // degrees are at/below the floor
}

TEST(Blatant, NeverDisconnectsUnderHeavyPruning) {
  Rng rng{8};
  Topology t = bootstrap_random(150, 8.0, rng);
  BlatantParams p;
  p.pruning_rate = 1.0;
  p.discovery_rate = 0.0;
  BlatantMaintainer m{t, p, rng.fork(1)};
  for (int round = 0; round < 30; ++round) {
    m.tick();
    ASSERT_TRUE(t.connected()) << "disconnected after round " << round;
  }
}

TEST(Blatant, StatsCountAnts) {
  Rng rng{9};
  Topology t = bootstrap_random(50, 4.0, rng);
  BlatantParams p;
  p.discovery_rate = 1.0;
  p.pruning_rate = 1.0;
  BlatantMaintainer m{t, p, rng.fork(1)};
  m.tick();
  EXPECT_EQ(m.stats().discovery_ants, 50u);
  EXPECT_EQ(m.stats().pruning_ants, 50u);
}

TEST(Blatant, CrashedOriginsEmitNoAnts) {
  Rng rng{11};
  Topology t = bootstrap_random(60, 4.0, rng);
  BlatantParams p;
  p.discovery_rate = 1.0;
  p.pruning_rate = 1.0;
  BlatantMaintainer m{t, p, rng.fork(1)};
  std::unordered_set<NodeId> dead;
  for (std::uint32_t i = 0; i < 30; ++i) dead.insert(NodeId{i});
  m.set_liveness([&dead](NodeId n) { return !dead.contains(n); });
  m.tick();
  // At rate 1.0 every *live* node emits both ants; dead origins none.
  EXPECT_EQ(m.stats().discovery_ants, 30u);
  EXPECT_EQ(m.stats().pruning_ants, 30u);
}

TEST(Blatant, LivenessGateDoesNotPerturbAllAliveRuns) {
  // Installing an all-true oracle must leave the topology bit-identical:
  // the Bernoulli draws happen before the gate, and walks consult the
  // oracle only on picks (which all pass).
  Rng rng{12};
  Topology plain = bootstrap_random(120, 4.0, rng);
  Topology gated = plain;
  BlatantMaintainer m1{plain, BlatantParams{}, Rng{99}};
  BlatantMaintainer m2{gated, BlatantParams{}, Rng{99}};
  m2.set_liveness([](NodeId) { return true; });
  for (int round = 0; round < 20; ++round) {
    m1.tick();
    m2.tick();
  }
  EXPECT_EQ(plain.link_count(), gated.link_count());
  for (NodeId n : plain.nodes()) {
    EXPECT_EQ(plain.neighbors(n), gated.neighbors(n));
  }
}

TEST(Blatant, WalksNeverLandOnDeadNodes) {
  // Discovery ants add links only between the origin and the walk's end;
  // with half the grid dead, no new link may touch a dead node.
  Rng rng{13};
  Topology t = bootstrap_random(80, 5.0, rng);
  const std::size_t before = t.link_count();
  BlatantParams p;
  p.discovery_rate = 1.0;
  p.pruning_rate = 0.0;
  p.alpha = 2;  // aggressive: almost every walked pair wants a shortcut
  p.beta = 2;
  BlatantMaintainer m{t, p, rng.fork(1)};
  auto dead = [](NodeId n) { return n.value() % 2 == 1; };
  m.set_liveness([&dead](NodeId n) { return !dead(n); });
  std::unordered_map<NodeId, std::vector<NodeId>> old_links;
  for (NodeId n : t.nodes()) old_links[n] = t.neighbors(n);
  for (int round = 0; round < 10; ++round) m.tick();
  EXPECT_GT(t.link_count(), before);
  for (NodeId n : t.nodes()) {
    if (!dead(n)) continue;
    // A dead node's neighbor list may only have shrunk (pruning is off, so
    // it is in fact unchanged) — discovery never attached to it.
    EXPECT_EQ(t.neighbors(n), old_links[n]);
  }
}

TEST(Blatant, WalkSurroundedByDeadNeighborsStaysPut) {
  // Star topology, all leaves dead: the walk cannot leave the center, the
  // ant terminates without adding links, and nothing crashes (the
  // fallback-scan path when every anti-backtrack draw hits a dead pick).
  Rng rng{14};
  Topology t;
  for (std::uint32_t i = 1; i <= 5; ++i) t.add_link(NodeId{0}, NodeId{i});
  BlatantMaintainer m{t, BlatantParams{}, rng};
  m.set_liveness([](NodeId n) { return n == NodeId{0}; });
  for (int i = 0; i < 20; ++i) m.discovery_ant(NodeId{0});
  EXPECT_EQ(t.link_count(), 5u);
}

TEST(Blatant, IntegratesJoinedNodes) {
  Rng rng{10};
  Topology t = bootstrap_random(100, 4.0, rng);
  BlatantMaintainer m{t, BlatantParams{}, rng.fork(1)};
  m.converge(40, 3);
  for (std::uint32_t i = 100; i < 150; ++i) {
    join_node(t, NodeId{i}, 2, rng);
  }
  m.converge(40, 3);
  EXPECT_TRUE(t.connected());
  EXPECT_LE(t.average_path_length(), static_cast<double>(m.params().alpha));
}

}  // namespace
}  // namespace aria::overlay
