#include "overlay/liveness.hpp"

#include <gtest/gtest.h>

namespace aria::overlay {
namespace {

HealingParams quick_params() {
  HealingParams p;
  p.enabled = true;
  p.suspect_after = 2;
  p.evict_after = 4;
  p.degree_floor = 4;
  p.contact_cache = 4;
  return p;
}

TEST(NeighborView, TrackStartsLive) {
  NeighborView v;
  v.track(NodeId{1});
  EXPECT_TRUE(v.tracked(NodeId{1}));
  EXPECT_EQ(v.state(NodeId{1}), PeerState::kLive);
  EXPECT_EQ(v.live_degree(), 1u);
  EXPECT_FALSE(v.tracked(NodeId{2}));
  EXPECT_EQ(v.state(NodeId{2}), PeerState::kEvicted);  // unknown == gone
}

TEST(NeighborView, MissedProbesSuspectThenEvict) {
  const HealingParams p = quick_params();
  NeighborView v;
  v.track(NodeId{1});
  v.probe_sent(NodeId{1}, 1);
  EXPECT_EQ(v.record_miss(NodeId{1}, p), NeighborView::Transition::kNone);
  EXPECT_EQ(v.state(NodeId{1}), PeerState::kLive);
  EXPECT_EQ(v.record_miss(NodeId{1}, p), NeighborView::Transition::kSuspected);
  EXPECT_EQ(v.state(NodeId{1}), PeerState::kSuspected);
  EXPECT_EQ(v.record_miss(NodeId{1}, p), NeighborView::Transition::kNone);
  EXPECT_EQ(v.record_miss(NodeId{1}, p), NeighborView::Transition::kEvicted);
  EXPECT_EQ(v.state(NodeId{1}), PeerState::kEvicted);
  EXPECT_EQ(v.stats().evictions, 1u);
  EXPECT_EQ(v.stats().false_suspicions, 0u);
}

TEST(NeighborView, PongClearsMissesAndCountsFalseSuspicion) {
  const HealingParams p = quick_params();
  NeighborView v;
  v.track(NodeId{1});
  v.probe_sent(NodeId{1}, 7);
  v.record_miss(NodeId{1}, p);
  v.record_miss(NodeId{1}, p);
  EXPECT_EQ(v.state(NodeId{1}), PeerState::kSuspected);
  v.probe_sent(NodeId{1}, 8);
  v.pong_received(NodeId{1}, 8);
  EXPECT_EQ(v.state(NodeId{1}), PeerState::kLive);
  EXPECT_EQ(v.stats().false_suspicions, 1u);
  // The miss counter reset: eviction needs the full run of misses again.
  v.probe_sent(NodeId{1}, 9);
  EXPECT_EQ(v.record_miss(NodeId{1}, p), NeighborView::Transition::kNone);
}

TEST(NeighborView, StalePongIsIgnored) {
  NeighborView v;
  v.track(NodeId{1});
  v.probe_sent(NodeId{1}, 5);
  v.pong_received(NodeId{1}, 4);  // answer to an older probe
  EXPECT_TRUE(v.outstanding(NodeId{1}));
  v.pong_received(NodeId{1}, 5);
  EXPECT_FALSE(v.outstanding(NodeId{1}));
  v.pong_received(NodeId{3}, 5);  // never tracked: no-op
}

TEST(NeighborView, TargetsKeepSuspectedDropEvicted) {
  const HealingParams p = quick_params();
  NeighborView v;
  v.track(NodeId{1});
  v.track(NodeId{2});
  v.track(NodeId{3});
  v.probe_sent(NodeId{2}, 1);
  v.record_miss(NodeId{2}, p);
  v.record_miss(NodeId{2}, p);  // 2 -> suspected
  v.probe_sent(NodeId{3}, 2);
  for (int i = 0; i < 4; ++i) v.record_miss(NodeId{3}, p);  // 3 -> evicted
  EXPECT_EQ(v.targets(), (std::vector<NodeId>{NodeId{1}, NodeId{2}}));
  EXPECT_EQ(v.live_neighbors(), (std::vector<NodeId>{NodeId{1}}));
  EXPECT_EQ(v.tracked_peers(),
            (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{3}}));
}

TEST(NeighborView, TrackRevivesEvictedPeer) {
  const HealingParams p = quick_params();
  NeighborView v;
  v.track(NodeId{1});
  v.probe_sent(NodeId{1}, 1);
  for (int i = 0; i < 4; ++i) v.record_miss(NodeId{1}, p);
  EXPECT_EQ(v.state(NodeId{1}), PeerState::kEvicted);
  v.track(NodeId{1});  // link re-established
  EXPECT_EQ(v.state(NodeId{1}), PeerState::kLive);
  EXPECT_FALSE(v.outstanding(NodeId{1}));
  // Miss history restarted from zero.
  v.probe_sent(NodeId{1}, 2);
  EXPECT_EQ(v.record_miss(NodeId{1}, p), NeighborView::Transition::kNone);
}

TEST(NeighborView, ContactCacheDedupesAndBounds) {
  NeighborView v;
  v.track(NodeId{9});
  v.learn_contact(NodeId{9}, NodeId{0}, 4);   // tracked: rejected
  v.learn_contact(NodeId{0}, NodeId{0}, 4);   // self: rejected
  v.learn_contact(kInvalidNode, NodeId{0}, 4);
  v.learn_contact(NodeId{1}, NodeId{0}, 4);
  v.learn_contact(NodeId{1}, NodeId{0}, 4);   // duplicate
  v.learn_contact(NodeId{2}, NodeId{0}, 4);
  EXPECT_EQ(v.contacts(), (std::vector<NodeId>{NodeId{1}, NodeId{2}}));
  v.learn_contact(NodeId{3}, NodeId{0}, 4);
  v.learn_contact(NodeId{4}, NodeId{0}, 4);
  v.learn_contact(NodeId{5}, NodeId{0}, 4);  // overflows: FIFO drops 1
  EXPECT_EQ(v.contacts(), (std::vector<NodeId>{NodeId{2}, NodeId{3}, NodeId{4},
                                               NodeId{5}}));
}

TEST(NeighborView, TakeContactSkipsTrackedAndExhausts) {
  NeighborView v;
  v.learn_contact(NodeId{1}, NodeId{0}, 8);
  v.learn_contact(NodeId{2}, NodeId{0}, 8);
  v.track(NodeId{1});  // became a neighbor meanwhile (also purges the cache)
  EXPECT_EQ(v.take_contact(), NodeId{2});
  EXPECT_EQ(v.take_contact(), kInvalidNode);
}

TEST(NeighborView, ClearWipesPeersButKeepsStats) {
  const HealingParams p = quick_params();
  NeighborView v;
  v.track(NodeId{1});
  v.probe_sent(NodeId{1}, 1);
  for (int i = 0; i < 4; ++i) v.record_miss(NodeId{1}, p);
  v.learn_contact(NodeId{5}, NodeId{0}, 4);
  v.clear();
  EXPECT_EQ(v.tracked_count(), 0u);
  EXPECT_TRUE(v.contacts().empty());
  EXPECT_EQ(v.stats().evictions, 1u);  // counters model the whole lifetime
}

}  // namespace
}  // namespace aria::overlay
