#include "overlay/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace aria::overlay {
namespace {

NodeId n(std::uint32_t v) { return NodeId{v}; }

TEST(Topology, EmptyInvariants) {
  Topology t;
  EXPECT_EQ(t.node_count(), 0u);
  EXPECT_EQ(t.link_count(), 0u);
  EXPECT_TRUE(t.connected());
  EXPECT_DOUBLE_EQ(t.average_degree(), 0.0);
  EXPECT_DOUBLE_EQ(t.average_path_length(), 0.0);
  EXPECT_EQ(t.diameter(), 0u);
}

TEST(Topology, AddNodeIsIdempotent) {
  Topology t;
  t.add_node(n(1));
  t.add_node(n(1));
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_TRUE(t.has_node(n(1)));
  EXPECT_FALSE(t.has_node(n(2)));
}

TEST(Topology, AddLinkCreatesBothDirections) {
  Topology t;
  EXPECT_TRUE(t.add_link(n(1), n(2)));
  EXPECT_TRUE(t.has_link(n(1), n(2)));
  EXPECT_TRUE(t.has_link(n(2), n(1)));
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_EQ(t.degree(n(1)), 1u);
  EXPECT_EQ(t.degree(n(2)), 1u);
}

TEST(Topology, AddLinkRejectsSelfAndDuplicates) {
  Topology t;
  EXPECT_FALSE(t.add_link(n(1), n(1)));
  EXPECT_TRUE(t.add_link(n(1), n(2)));
  EXPECT_FALSE(t.add_link(n(1), n(2)));
  EXPECT_FALSE(t.add_link(n(2), n(1)));
  EXPECT_EQ(t.link_count(), 1u);
}

TEST(Topology, RemoveLink) {
  Topology t;
  t.add_link(n(1), n(2));
  EXPECT_TRUE(t.remove_link(n(2), n(1)));
  EXPECT_FALSE(t.has_link(n(1), n(2)));
  EXPECT_EQ(t.link_count(), 0u);
  EXPECT_FALSE(t.remove_link(n(1), n(2)));  // already gone
  EXPECT_FALSE(t.remove_link(n(1), n(9)));  // never existed
}

TEST(Topology, RemoveNodeCleansIncidentLinks) {
  Topology t;
  t.add_link(n(1), n(2));
  t.add_link(n(1), n(3));
  t.add_link(n(2), n(3));
  t.remove_node(n(1));
  EXPECT_FALSE(t.has_node(n(1)));
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_FALSE(t.has_link(n(2), n(1)));
  EXPECT_EQ(t.degree(n(2)), 1u);
  const auto& nb = t.neighbors(n(2));
  EXPECT_TRUE(std::find(nb.begin(), nb.end(), n(1)) == nb.end());
}

TEST(Topology, NeighborsOfUnknownNodeIsEmpty) {
  Topology t;
  EXPECT_TRUE(t.neighbors(n(42)).empty());
  EXPECT_EQ(t.degree(n(42)), 0u);
}

TEST(Topology, DistanceOnPathGraph) {
  Topology t;
  for (std::uint32_t i = 0; i < 5; ++i) t.add_link(n(i), n(i + 1));
  EXPECT_EQ(t.distance(n(0), n(0)), 0u);
  EXPECT_EQ(t.distance(n(0), n(1)), 1u);
  EXPECT_EQ(t.distance(n(0), n(5)), 5u);
  EXPECT_EQ(t.distance(n(2), n(4)), 2u);
}

TEST(Topology, DistanceUnreachableAndUnknown) {
  Topology t;
  t.add_link(n(1), n(2));
  t.add_node(n(3));
  EXPECT_FALSE(t.distance(n(1), n(3)).has_value());
  EXPECT_FALSE(t.distance(n(1), n(99)).has_value());
}

TEST(Topology, DistanceWithoutLinkFindsDetour) {
  // Triangle 1-2-3 plus pendant 4 on 3.
  Topology t;
  t.add_link(n(1), n(2));
  t.add_link(n(2), n(3));
  t.add_link(n(1), n(3));
  t.add_link(n(3), n(4));
  EXPECT_EQ(t.distance(n(1), n(3)), 1u);
  EXPECT_EQ(t.distance_without_link(n(1), n(3), n(1), n(3)), 2u);
  // Removing a bridge disconnects.
  EXPECT_FALSE(t.distance_without_link(n(1), n(4), n(3), n(4)).has_value());
}

TEST(Topology, ConnectedDetection) {
  Topology t;
  t.add_link(n(1), n(2));
  t.add_link(n(2), n(3));
  EXPECT_TRUE(t.connected());
  t.add_node(n(4));
  EXPECT_FALSE(t.connected());
  t.add_link(n(3), n(4));
  EXPECT_TRUE(t.connected());
}

TEST(Topology, SingleNodeIsConnected) {
  Topology t;
  t.add_node(n(1));
  EXPECT_TRUE(t.connected());
}

TEST(Topology, AveragePathLengthOnRing) {
  // Ring of 6: distances from any node are 1,1,2,2,3 -> mean 9/5 = 1.8.
  Topology t;
  for (std::uint32_t i = 0; i < 6; ++i) t.add_link(n(i), n((i + 1) % 6));
  EXPECT_NEAR(t.average_path_length(), 1.8, 1e-9);
  EXPECT_EQ(t.diameter(), 3u);
}

TEST(Topology, AveragePathLengthOnCompleteGraph) {
  Topology t;
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = i + 1; j < 5; ++j) t.add_link(n(i), n(j));
  }
  EXPECT_DOUBLE_EQ(t.average_path_length(), 1.0);
  EXPECT_EQ(t.diameter(), 1u);
  EXPECT_DOUBLE_EQ(t.average_degree(), 4.0);
}

TEST(Topology, NodesReturnsSortedIds) {
  Topology t;
  t.add_node(n(5));
  t.add_node(n(1));
  t.add_node(n(3));
  const auto ids = t.nodes();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], n(1));
  EXPECT_EQ(ids[1], n(3));
  EXPECT_EQ(ids[2], n(5));
}

TEST(Topology, LinkCountTracksMutations) {
  Topology t;
  for (std::uint32_t i = 0; i < 10; ++i) t.add_link(n(i), n(i + 1));
  EXPECT_EQ(t.link_count(), 10u);
  t.remove_link(n(3), n(4));
  EXPECT_EQ(t.link_count(), 9u);
  t.remove_node(n(0));
  EXPECT_EQ(t.link_count(), 8u);
  EXPECT_NEAR(t.average_degree(), 2.0 * 8 / 10, 1e-9);
}

}  // namespace
}  // namespace aria::overlay
