// Parameterized overlay-maintenance properties across network sizes and
// seeds: after convergence the topology must stay connected, respect the
// alpha path-length bound, and keep the link count near-minimal.
#include <gtest/gtest.h>

#include "overlay/blatant.hpp"
#include "overlay/bootstrap.hpp"

namespace aria::overlay {
namespace {

class ConvergenceSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(ConvergenceSweep, InvariantsAfterConvergence) {
  const auto& [n, seed] = GetParam();
  Rng rng{seed};
  Topology topo = bootstrap_random(n, 4.0, rng);
  BlatantParams params;
  BlatantMaintainer maintainer{topo, params, rng.fork(1)};
  maintainer.converge(80, 3);

  EXPECT_TRUE(topo.connected()) << "n=" << n << " seed=" << seed;
  EXPECT_EQ(topo.node_count(), n);
  EXPECT_LE(topo.average_path_length(), static_cast<double>(params.alpha));
  // Near-minimal: between a tree (n-1) and the bootstrap link budget.
  EXPECT_GE(topo.link_count(), n - 1);
  EXPECT_LE(topo.average_degree(), 6.0);
}

TEST_P(ConvergenceSweep, StableUnderContinuedTicks) {
  const auto& [n, seed] = GetParam();
  Rng rng{seed};
  Topology topo = bootstrap_random(n, 4.0, rng);
  BlatantParams params;
  BlatantMaintainer maintainer{topo, params, rng.fork(1)};
  maintainer.converge(80, 3);
  const double apl_converged = topo.average_path_length();

  // 30 more maintenance rounds must not destabilize the overlay.
  for (int i = 0; i < 30; ++i) maintainer.tick();
  EXPECT_TRUE(topo.connected());
  EXPECT_LE(topo.average_path_length(), static_cast<double>(params.alpha));
  EXPECT_NEAR(topo.average_path_length(), apl_converged, 2.0);
}

std::string convergence_name(
    const ::testing::TestParamInfo<std::tuple<std::size_t, std::uint64_t>>&
        info) {
  // Built with append instead of operator+: the concatenation pattern trips
  // GCC 12's -Wrestrict false positive (PR105329) under -O2 -Werror.
  std::string name = "n";
  name += std::to_string(std::get<0>(info.param));
  name += "_seed";
  name += std::to_string(std::get<1>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ConvergenceSweep,
    ::testing::Combine(::testing::Values(std::size_t{50}, std::size_t{150},
                                         std::size_t{400}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2})),
    convergence_name);

TEST(ConvergenceChurn, SurvivesJoinLeaveWaves) {
  Rng rng{5};
  Topology topo = bootstrap_random(120, 4.0, rng);
  BlatantParams params;
  BlatantMaintainer maintainer{topo, params, rng.fork(1)};
  maintainer.converge(60, 3);

  std::uint32_t next_id = 120;
  for (int wave = 0; wave < 5; ++wave) {
    // 10 joins...
    for (int i = 0; i < 10; ++i) {
      join_node(topo, NodeId{next_id++}, 2, rng);
    }
    // ...and 5 departures of random existing nodes (never isolating the
    // graph check below catches any damage the ants cannot repair).
    auto nodes = topo.nodes();
    rng.shuffle(nodes);
    for (int i = 0; i < 5 && static_cast<std::size_t>(i) < nodes.size(); ++i) {
      topo.remove_node(nodes[static_cast<std::size_t>(i)]);
    }
    maintainer.converge(40, 3);
    // Departures can split the overlay in pathological cases; the
    // maintenance layer must at least keep the bound on the main component
    // and never crash. Full connectivity is asserted when it holds.
    if (topo.connected()) {
      EXPECT_LE(topo.average_path_length(),
                static_cast<double>(params.alpha) + 1.0)
          << "wave " << wave;
    }
  }
  EXPECT_GT(topo.node_count(), 120u);
}

}  // namespace
}  // namespace aria::overlay
