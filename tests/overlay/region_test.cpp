// Region model of the hierarchical discovery plane (docs/hierarchy.md).
// Everything here is stateless arithmetic shared by every node — the
// partition, the designated aggregator candidates, the auto-sizing rule and
// the digest fold — so these tests pin the algebraic properties the
// protocol relies on: the partition covers and is disjoint, candidate lists
// are in-region and collision-free across regions, and digest totals are
// exactly conserved sums of the member reports.
#include "overlay/region.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "overlay/bootstrap.hpp"

namespace aria::overlay {
namespace {

// ---------------------------------------------------------------------------
// Partition: region_of
// ---------------------------------------------------------------------------

TEST(Region, PartitionCoversAndIsDisjoint) {
  // Every node lands in exactly one region in [0, R); every region is hit.
  const std::size_t R = 7;
  std::vector<std::size_t> sizes(R, 0);
  for (std::uint32_t n = 0; n < 700; ++n) {
    const std::uint32_t r = region_of(NodeId{n}, R);
    ASSERT_LT(r, R);
    ++sizes[r];
  }
  for (std::size_t r = 0; r < R; ++r) {
    EXPECT_EQ(sizes[r], 100u) << "mod-R partition must be balanced when R "
                                 "divides the node count";
  }
}

TEST(Region, DegenerateRegionCountsCollapseToOneRegion) {
  EXPECT_EQ(region_of(NodeId{41}, 0), 0u);
  EXPECT_EQ(region_of(NodeId{41}, 1), 0u);
}

// ---------------------------------------------------------------------------
// Aggregator designation
// ---------------------------------------------------------------------------

TEST(Region, CandidatesLiveInTheirOwnRegion) {
  const std::size_t R = 5, standby = 3;
  for (std::uint32_t r = 0; r < R; ++r) {
    for (std::size_t rank = 0; rank < standby; ++rank) {
      const NodeId c = aggregator_candidate(r, R, rank);
      EXPECT_EQ(region_of(c, R), r);
    }
  }
}

TEST(Region, CandidateListsAreUniqueAcrossRegions) {
  // No node can be a candidate of two regions, and ranks never collide:
  // R * standby designations name R * standby distinct nodes.
  const std::size_t R = 6, standby = 2;
  std::set<NodeId> seen;
  for (std::uint32_t r = 0; r < R; ++r) {
    const std::vector<NodeId> cands = aggregator_candidates(r, R, standby);
    ASSERT_EQ(cands.size(), standby);
    for (NodeId c : cands) {
      EXPECT_TRUE(seen.insert(c).second)
          << "duplicate candidate " << c.to_string();
      EXPECT_TRUE(is_aggregator_candidate(c, R, standby));
    }
  }
  EXPECT_EQ(seen.size(), R * standby);
}

TEST(Region, NonCandidatesAreRecognized) {
  const std::size_t R = 4, standby = 2;
  // Ids >= R * standby are plain members.
  EXPECT_FALSE(is_aggregator_candidate(NodeId{8}, R, standby));
  EXPECT_FALSE(is_aggregator_candidate(NodeId{100}, R, standby));
  EXPECT_TRUE(is_aggregator_candidate(NodeId{7}, R, standby));
}

// ---------------------------------------------------------------------------
// Auto-sizing
// ---------------------------------------------------------------------------

TEST(Region, ResolveHonorsExplicitRequest) {
  EXPECT_EQ(resolve_region_count(8, 1000, 128, 2), 8u);
}

TEST(Region, ResolveAutoSizesToTargetRegionSize) {
  // 1000 nodes at ~128/region -> 8 regions (rounded to nearest).
  const std::size_t r = resolve_region_count(0, 1000, 128, 2);
  EXPECT_GE(r, 7u);
  EXPECT_LE(r, 8u);
}

TEST(Region, ResolveClampsSoCandidateListsFit) {
  // Every region must seat its full standby list: R * standby <= nodes.
  const std::size_t standby = 2;
  for (std::size_t nodes : {1u, 2u, 3u, 10u, 17u}) {
    const std::size_t r = resolve_region_count(1000, nodes, 128, standby);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r * standby, std::max<std::size_t>(nodes, standby));
  }
}

TEST(Region, ResolveNeverReturnsZero) {
  EXPECT_GE(resolve_region_count(0, 0, 128, 2), 1u);
  EXPECT_GE(resolve_region_count(0, 1, 128, 2), 1u);
}

// ---------------------------------------------------------------------------
// Digest fold: conservation
// ---------------------------------------------------------------------------

TEST(Region, AggregateLoadsConservesTotals) {
  // The digest is a pure fold: member counts, idle counts, backlog seconds
  // and queue lengths are exactly the sums of the inputs. Delegation
  // decisions steer by these totals, so any drift here silently re-routes
  // jobs.
  std::vector<MemberLoad> loads;
  double backlog = 0.0;
  std::uint32_t queued = 0, idle = 0;
  for (int i = 0; i < 57; ++i) {
    MemberLoad m;
    m.idle = (i % 3 == 0);
    m.backlog_seconds = 10.5 * i;
    m.queue_len = static_cast<std::uint32_t>(i % 5);
    backlog += m.backlog_seconds;
    queued += m.queue_len;
    idle += m.idle ? 1 : 0;
    loads.push_back(m);
  }
  const RegionDigest d = aggregate_loads(3, 42, loads);
  EXPECT_EQ(d.region, 3u);
  EXPECT_EQ(d.epoch, 42u);
  EXPECT_EQ(d.members, 57u);
  EXPECT_EQ(d.idle, idle);
  EXPECT_EQ(d.queue_len, queued);
  EXPECT_DOUBLE_EQ(d.backlog_seconds, backlog);
}

TEST(Region, AggregateOfNothingIsEmpty) {
  const RegionDigest d = aggregate_loads(1, 7, {});
  EXPECT_EQ(d.members, 0u);
  EXPECT_EQ(d.idle, 0u);
  EXPECT_EQ(d.queue_len, 0u);
  EXPECT_DOUBLE_EQ(d.backlog_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Hierarchical bootstrap
// ---------------------------------------------------------------------------

TEST(Region, HierarchicalBootstrapConnectsEveryRegionInternally) {
  // Region-scoped floods only traverse intra-region links, so each region's
  // induced subgraph must be connected on its own — global connectivity is
  // not enough.
  Rng rng{11};
  const std::size_t R = 6;
  const Topology t = bootstrap_hierarchical(600, R, 4.0, 2, rng);
  EXPECT_EQ(t.node_count(), 600u);
  EXPECT_TRUE(t.connected());
  for (NodeId n : t.nodes()) {
    const std::uint32_t r = region_of(n, R);
    bool has_intra = false;
    for (NodeId peer : t.neighbors(n)) {
      if (region_of(peer, R) == r) {
        has_intra = true;
        break;
      }
    }
    EXPECT_TRUE(has_intra) << n.to_string() << " has no intra-region link";
  }
}

TEST(Region, HierarchicalBootstrapIsDeterministic) {
  Rng r1{12}, r2{12};
  const Topology a = bootstrap_hierarchical(300, 4, 4.0, 2, r1);
  const Topology b = bootstrap_hierarchical(300, 4, 4.0, 2, r2);
  EXPECT_EQ(a.link_count(), b.link_count());
  for (NodeId n : a.nodes()) {
    EXPECT_EQ(a.degree(n), b.degree(n));
  }
}

TEST(Region, JoinNodeLandsInItsOwnRegion) {
  Rng rng{13};
  const std::size_t R = 4;
  Topology t = bootstrap_hierarchical(200, R, 4.0, 2, rng);
  const NodeId joiner{200};
  join_node_in_region(t, joiner, 3, R, rng);
  ASSERT_TRUE(t.has_node(joiner));
  ASSERT_GT(t.degree(joiner), 0u);
  for (NodeId peer : t.neighbors(joiner)) {
    EXPECT_EQ(region_of(peer, R), region_of(joiner, R))
        << "join contacts must come from the joiner's region";
  }
}

}  // namespace
}  // namespace aria::overlay
