#include "overlay/flooding.hpp"

#include <gtest/gtest.h>

#include <set>

#include "overlay/bootstrap.hpp"

namespace aria::overlay {
namespace {

Uuid make_id(Rng& rng) { return Uuid::generate(rng); }

TEST(FloodRelay, MarkSeenFirstTimeOnly) {
  Topology t;
  t.add_node(NodeId{1});
  Rng rng{1};
  FloodRelay relay{t, rng.fork(1)};
  const Uuid id = make_id(rng);
  EXPECT_TRUE(relay.mark_seen(NodeId{1}, id));
  EXPECT_FALSE(relay.mark_seen(NodeId{1}, id));
  EXPECT_TRUE(relay.has_seen(NodeId{1}, id));
  EXPECT_FALSE(relay.has_seen(NodeId{2}, id));
}

TEST(FloodRelay, IndependentPerFlood) {
  Topology t;
  Rng rng{2};
  FloodRelay relay{t, rng.fork(1)};
  const Uuid a = make_id(rng), b = make_id(rng);
  EXPECT_TRUE(relay.mark_seen(NodeId{1}, a));
  EXPECT_TRUE(relay.mark_seen(NodeId{1}, b));
  EXPECT_FALSE(relay.mark_seen(NodeId{1}, a));
}

TEST(FloodRelay, ForgetFreesState) {
  Topology t;
  Rng rng{3};
  FloodRelay relay{t, rng.fork(1)};
  const Uuid id = make_id(rng);
  relay.mark_seen(NodeId{1}, id);
  EXPECT_EQ(relay.tracked_floods(), 1u);
  relay.forget(id);
  EXPECT_EQ(relay.tracked_floods(), 0u);
  // A forgotten flood id would be processed again (the protocol only
  // forgets floods that can no longer be in flight).
  EXPECT_TRUE(relay.mark_seen(NodeId{1}, id));
}

TEST(FloodRelay, PickTargetsReturnsNeighborsOnly) {
  Topology t;
  for (std::uint32_t i = 1; i <= 6; ++i) t.add_link(NodeId{0}, NodeId{i});
  Rng rng{4};
  FloodRelay relay{t, rng.fork(1)};
  for (int i = 0; i < 50; ++i) {
    const auto picks = relay.pick_targets(NodeId{0}, 3);
    EXPECT_EQ(picks.size(), 3u);
    std::set<NodeId> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 3u);
    for (NodeId p : picks) EXPECT_TRUE(t.has_link(NodeId{0}, p));
  }
}

TEST(FloodRelay, PickTargetsExcludes) {
  Topology t;
  t.add_link(NodeId{0}, NodeId{1});
  t.add_link(NodeId{0}, NodeId{2});
  t.add_link(NodeId{0}, NodeId{3});
  Rng rng{5};
  FloodRelay relay{t, rng.fork(1)};
  for (int i = 0; i < 50; ++i) {
    const auto picks = relay.pick_targets(NodeId{0}, 5, NodeId{1}, NodeId{2});
    ASSERT_EQ(picks.size(), 1u);
    EXPECT_EQ(picks[0], NodeId{3});
  }
}

TEST(FloodRelay, PickTargetsFewerNeighborsThanFanout) {
  Topology t;
  t.add_link(NodeId{0}, NodeId{1});
  Rng rng{6};
  FloodRelay relay{t, rng.fork(1)};
  const auto picks = relay.pick_targets(NodeId{0}, 4);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], NodeId{1});
}

TEST(FloodRelay, PickTargetsEmptyForIsolatedNode) {
  Topology t;
  t.add_node(NodeId{0});
  Rng rng{7};
  FloodRelay relay{t, rng.fork(1)};
  EXPECT_TRUE(relay.pick_targets(NodeId{0}, 4).empty());
}

TEST(FloodRelay, PickTargetsIsRandomized) {
  Topology t;
  for (std::uint32_t i = 1; i <= 8; ++i) t.add_link(NodeId{0}, NodeId{i});
  Rng rng{8};
  FloodRelay relay{t, rng.fork(1)};
  std::set<NodeId> seen;
  for (int i = 0; i < 100; ++i) {
    for (NodeId p : relay.pick_targets(NodeId{0}, 2)) seen.insert(p);
  }
  EXPECT_EQ(seen.size(), 8u);  // over time every neighbor gets picked
}

TEST(FloodRelay, TtlSweepReclaimsExpiredEntries) {
  Topology t;
  Rng rng{20};
  FloodRelay relay{t, rng.fork(1)};
  relay.set_ttl(Duration::seconds(60));
  const Uuid a = make_id(rng), b = make_id(rng);
  relay.mark_seen(NodeId{1}, a, TimePoint::origin());
  relay.mark_seen(NodeId{1}, b, TimePoint::origin() + Duration::seconds(30));
  EXPECT_EQ(relay.tracked_floods(), 2u);
  // At t=60 `a` expires but `b` (first seen at 30) does not.
  const Uuid c = make_id(rng);
  relay.mark_seen(NodeId{2}, c, TimePoint::origin() + Duration::seconds(60));
  EXPECT_EQ(relay.tracked_floods(), 2u);  // b + c
  EXPECT_FALSE(relay.has_seen(NodeId{1}, a));
  EXPECT_TRUE(relay.has_seen(NodeId{1}, b));
}

TEST(FloodRelay, LateDuplicateAfterForgetIsEventuallyReclaimed) {
  // The leak this fixes: the protocol forget()s a flood once it can no
  // longer be in flight, but a straggler duplicate arriving later
  // re-created the entry and nothing ever deleted it again.
  Topology t;
  Rng rng{21};
  FloodRelay relay{t, rng.fork(1)};
  relay.set_ttl(Duration::seconds(60));
  const Uuid id = make_id(rng);
  relay.mark_seen(NodeId{1}, id, TimePoint::origin());
  relay.forget(id);
  // The straggler re-creates the entry at t=90...
  EXPECT_TRUE(relay.mark_seen(
      NodeId{1}, id, TimePoint::origin() + Duration::seconds(90)));
  EXPECT_EQ(relay.tracked_floods(), 1u);
  // ...and the TTL sweep reclaims it one ttl later, without an explicit
  // forget. The stale expiry record from the first sighting must not have
  // reclaimed the re-created entry early (checked at t=120 < 90+60).
  const Uuid other = make_id(rng);
  relay.mark_seen(NodeId{2}, other,
                  TimePoint::origin() + Duration::seconds(120));
  EXPECT_TRUE(relay.has_seen(NodeId{1}, id));
  relay.mark_seen(NodeId{2}, other,
                  TimePoint::origin() + Duration::seconds(151));
  EXPECT_FALSE(relay.has_seen(NodeId{1}, id));
}

TEST(FloodRelay, ZeroTtlNeverSweeps) {
  Topology t;
  Rng rng{22};
  FloodRelay relay{t, rng.fork(1)};
  const Uuid id = make_id(rng);
  relay.mark_seen(NodeId{1}, id, TimePoint::origin());
  relay.mark_seen(NodeId{2}, id, TimePoint::origin() + Duration::hours(24));
  EXPECT_TRUE(relay.has_seen(NodeId{1}, id));
  EXPECT_EQ(relay.tracked_floods(), 1u);
}

TEST(FloodRelay, SweepKeepsBoundedUnderStragglerChurn) {
  // Continuous stream of distinct floods with time advancing: the tracked
  // set must stay bounded by what fits inside one TTL window.
  Topology t;
  Rng rng{23};
  FloodRelay relay{t, rng.fork(1)};
  relay.set_ttl(Duration::seconds(60));
  for (int i = 0; i < 1000; ++i) {
    const Uuid id = make_id(rng);
    const TimePoint now = TimePoint::origin() + Duration::seconds(i);
    relay.mark_seen(NodeId{1}, id, now);
    relay.forget(id);
    relay.mark_seen(NodeId{1}, id, now);  // straggler re-creation
  }
  EXPECT_LE(relay.tracked_floods(), 61u);
}

// Simulated flood over a real topology: verify hop/fanout bounds control
// coverage the way the protocol relies on.
std::size_t flood_coverage(const Topology& /*topo*/, NodeId origin,
                           std::size_t hops, std::size_t fanout,
                           FloodRelay& relay, Rng& rng) {
  const Uuid id = Uuid::generate(rng);
  std::size_t covered = 0;
  std::vector<std::pair<NodeId, std::size_t>> frontier{{origin, hops}};
  relay.mark_seen(origin, id);
  ++covered;
  while (!frontier.empty()) {
    auto [node, left] = frontier.back();
    frontier.pop_back();
    if (left == 0) continue;
    for (NodeId next : relay.pick_targets(node, fanout)) {
      if (!relay.mark_seen(next, id)) continue;
      ++covered;
      frontier.emplace_back(next, left - 1);
    }
  }
  return covered;
}

TEST(FloodRelay, CoverageGrowsWithHops) {
  Rng rng{9};
  Topology t = bootstrap_random(300, 4.0, rng);
  FloodRelay relay{t, rng.fork(1)};
  const std::size_t small = flood_coverage(t, NodeId{0}, 2, 4, relay, rng);
  const std::size_t large = flood_coverage(t, NodeId{0}, 9, 4, relay, rng);
  EXPECT_LT(small, large);
  EXPECT_LE(small, 1u + 4u + 16u);  // fanout bound per hop
}

TEST(FloodRelay, NineHopFanoutFourCoversMostOfPaperSizedOverlay) {
  Rng rng{10};
  Topology t = bootstrap_random(500, 4.0, rng);
  FloodRelay relay{t, rng.fork(1)};
  const std::size_t covered = flood_coverage(t, NodeId{3}, 9, 4, relay, rng);
  EXPECT_GT(covered, 300u);  // REQUEST floods reach most of the grid
}

TEST(FloodRelay, InformFloodIsLighter) {
  Rng rng{11};
  Topology t = bootstrap_random(500, 4.0, rng);
  FloodRelay relay{t, rng.fork(1)};
  const std::size_t inform = flood_coverage(t, NodeId{3}, 8, 2, relay, rng);
  const std::size_t request = flood_coverage(t, NodeId{3}, 9, 4, relay, rng);
  EXPECT_LT(inform, request);  // "more lightweight approach" (paper §IV-E)
}

}  // namespace
}  // namespace aria::overlay
