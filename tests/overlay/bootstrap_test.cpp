#include "overlay/bootstrap.hpp"

#include <gtest/gtest.h>

namespace aria::overlay {
namespace {

TEST(Bootstrap, EmptyAndSingle) {
  Rng rng{1};
  EXPECT_EQ(bootstrap_random(0, 4.0, rng).node_count(), 0u);
  Topology one = bootstrap_random(1, 4.0, rng);
  EXPECT_EQ(one.node_count(), 1u);
  EXPECT_EQ(one.link_count(), 0u);
  EXPECT_TRUE(one.connected());
}

TEST(Bootstrap, ProducesConnectedGraph) {
  Rng rng{2};
  const Topology t = bootstrap_random(200, 4.0, rng);
  EXPECT_EQ(t.node_count(), 200u);
  EXPECT_TRUE(t.connected());
}

TEST(Bootstrap, HitsTargetAverageDegree) {
  Rng rng{3};
  const Topology t = bootstrap_random(500, 4.0, rng);
  EXPECT_NEAR(t.average_degree(), 4.0, 0.2);
}

TEST(Bootstrap, FirstIdOffset) {
  Rng rng{4};
  const Topology t = bootstrap_random(10, 2.0, rng, /*first_id=*/100);
  EXPECT_TRUE(t.has_node(NodeId{100}));
  EXPECT_TRUE(t.has_node(NodeId{109}));
  EXPECT_FALSE(t.has_node(NodeId{0}));
}

TEST(Bootstrap, DeterministicForSeed) {
  Rng r1{5}, r2{5};
  const Topology a = bootstrap_random(100, 4.0, r1);
  const Topology b = bootstrap_random(100, 4.0, r2);
  EXPECT_EQ(a.link_count(), b.link_count());
  for (NodeId node : a.nodes()) {
    EXPECT_EQ(a.degree(node), b.degree(node));
  }
}

TEST(Bootstrap, SmallWorldPathLength) {
  Rng rng{6};
  const Topology t = bootstrap_random(500, 4.0, rng);
  // A random graph with average degree 4 has APL around ln(n)/ln(k) ~ 4.5.
  EXPECT_LT(t.average_path_length(), 7.0);
  EXPECT_GT(t.average_path_length(), 2.0);
}

TEST(BootstrapRegular, ConnectedWithRequestedDegree) {
  Rng rng{20};
  const Topology t = bootstrap_regular(300, 4, rng);
  EXPECT_EQ(t.node_count(), 300u);
  EXPECT_TRUE(t.connected());
  // Stub matching loses a few links to self/duplicate pairs.
  EXPECT_NEAR(t.average_degree(), 4.0, 0.5);
}

TEST(BootstrapRegular, SmallCounts) {
  Rng rng{21};
  EXPECT_EQ(bootstrap_regular(0, 4, rng).node_count(), 0u);
  const Topology one = bootstrap_regular(1, 4, rng);
  EXPECT_EQ(one.node_count(), 1u);
  EXPECT_EQ(one.link_count(), 0u);
  const Topology two = bootstrap_regular(2, 4, rng);
  EXPECT_TRUE(two.connected());
}

TEST(BootstrapRegular, Deterministic) {
  Rng a{22}, b{22};
  const Topology ta = bootstrap_regular(100, 4, a);
  const Topology tb = bootstrap_regular(100, 4, b);
  EXPECT_EQ(ta.link_count(), tb.link_count());
  for (NodeId n : ta.nodes()) EXPECT_EQ(ta.degree(n), tb.degree(n));
}

TEST(BootstrapSmallWorld, ZeroBetaIsRingLattice) {
  Rng rng{23};
  const Topology t = bootstrap_small_world(50, 4, 0.0, rng);
  EXPECT_TRUE(t.connected());
  EXPECT_DOUBLE_EQ(t.average_degree(), 4.0);
  // Pure lattice: every node links to its 2 neighbors per side.
  EXPECT_TRUE(t.has_link(NodeId{0}, NodeId{1}));
  EXPECT_TRUE(t.has_link(NodeId{0}, NodeId{2}));
  EXPECT_FALSE(t.has_link(NodeId{0}, NodeId{3}));
  // Lattice APL is large: ~n/(2k) scale.
  EXPECT_GT(t.average_path_length(), 5.0);
}

TEST(BootstrapSmallWorld, RewiringShortensPaths) {
  Rng rng{24};
  const Topology lattice = bootstrap_small_world(200, 4, 0.0, rng);
  const Topology rewired = bootstrap_small_world(200, 4, 0.2, rng);
  EXPECT_TRUE(rewired.connected());
  EXPECT_LT(rewired.average_path_length(), lattice.average_path_length());
  EXPECT_NEAR(rewired.average_degree(), 4.0, 0.3);
}

TEST(BootstrapSmallWorld, StaysConnectedEvenAtHighBeta) {
  Rng rng{25};
  const Topology t = bootstrap_small_world(150, 4, 0.9, rng);
  EXPECT_TRUE(t.connected());  // bridge-protection in the rewiring
}

TEST(JoinNode, ConnectsToRequestedContacts) {
  Rng rng{7};
  Topology t = bootstrap_random(50, 4.0, rng);
  join_node(t, NodeId{50}, 3, rng);
  EXPECT_TRUE(t.has_node(NodeId{50}));
  EXPECT_EQ(t.degree(NodeId{50}), 3u);
  EXPECT_TRUE(t.connected());
}

TEST(JoinNode, ZeroContactsStillLinksOnce) {
  Rng rng{8};
  Topology t = bootstrap_random(10, 2.0, rng);
  join_node(t, NodeId{10}, 0, rng);
  EXPECT_EQ(t.degree(NodeId{10}), 1u);
  EXPECT_TRUE(t.connected());
}

TEST(JoinNode, IntoEmptyTopology) {
  Rng rng{9};
  Topology t;
  join_node(t, NodeId{0}, 2, rng);
  EXPECT_TRUE(t.has_node(NodeId{0}));
  EXPECT_EQ(t.degree(NodeId{0}), 0u);
}

TEST(JoinNode, ManySequentialJoinsKeepConnectivity) {
  Rng rng{10};
  Topology t = bootstrap_random(20, 4.0, rng);
  for (std::uint32_t i = 20; i < 120; ++i) {
    join_node(t, NodeId{i}, 2, rng);
  }
  EXPECT_EQ(t.node_count(), 120u);
  EXPECT_TRUE(t.connected());
}

}  // namespace
}  // namespace aria::overlay
