// Bounded-queue semantics (overload plane, docs/overload.md): capacity
// accounting, backlog, and the per-family shed-victim rule of
// enqueue_bounded().
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/policies.hpp"

namespace aria::sched {
namespace {

using namespace aria::literals;

grid::JobSpec job(Rng& rng, Duration ert,
                  std::optional<TimePoint> deadline = {}) {
  grid::JobSpec s;
  s.id = JobId::generate(rng);
  s.ert = ert;
  s.deadline = deadline;
  return s;
}

QueuedJob queued(Rng& rng, Duration ert, TimePoint at = TimePoint::origin(),
                 std::optional<TimePoint> deadline = {}) {
  return QueuedJob{job(rng, ert, deadline), ert, at, 0};
}

TEST(BoundedQueue, UnboundedByDefault) {
  Rng rng{1};
  FcfsScheduler s;
  EXPECT_EQ(s.capacity(), 0u);
  EXPECT_FALSE(s.at_capacity());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(s.enqueue_bounded(queued(rng, 1_h), Duration::zero(),
                                   TimePoint::origin())
                     .has_value());
  }
  EXPECT_EQ(s.size(), 50u);
}

TEST(BoundedQueue, BacklogSumsQueuedErtp) {
  Rng rng{2};
  FcfsScheduler s;
  EXPECT_EQ(s.backlog(), Duration::zero());
  s.enqueue(queued(rng, 1_h));
  s.enqueue(queued(rng, 30_min));
  EXPECT_EQ(s.backlog(), 1_h + 30_min);
}

TEST(BoundedQueue, AtCapacityTracksBound) {
  Rng rng{3};
  FcfsScheduler s;
  s.set_capacity(2);
  EXPECT_FALSE(s.at_capacity());
  s.enqueue(queued(rng, 1_h));
  EXPECT_FALSE(s.at_capacity());
  s.enqueue(queued(rng, 1_h));
  EXPECT_TRUE(s.at_capacity());
}

TEST(BoundedQueue, FcfsShedsTailArrival) {
  // FCFS orders by arrival, so the newest job sits at the tail — the
  // largest ETTC along the execution order — and is the shed victim.
  Rng rng{4};
  FcfsScheduler s;
  s.set_capacity(2);
  const auto a = queued(rng, 1_h, TimePoint::origin());
  const auto b = queued(rng, 2_h, TimePoint::origin() + 1_s);
  const auto c = queued(rng, 30_min, TimePoint::origin() + 2_s);
  s.enqueue(a);
  s.enqueue(b);
  const auto victim =
      s.enqueue_bounded(c, Duration::zero(), TimePoint::origin() + 2_s);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->spec.id, c.spec.id);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(a.spec.id));
  EXPECT_TRUE(s.contains(b.spec.id));
}

TEST(BoundedQueue, SjfShedsLongestJob) {
  // SJF orders by ERTp, so the longest queued job is the tail — an
  // incoming short job displaces it.
  Rng rng{5};
  SjfScheduler s;
  s.set_capacity(2);
  const auto long_job = queued(rng, 4_h);
  const auto mid_job = queued(rng, 2_h);
  const auto short_job = queued(rng, 30_min);
  s.enqueue(long_job);
  s.enqueue(mid_job);
  const auto victim =
      s.enqueue_bounded(short_job, Duration::zero(), TimePoint::origin());
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->spec.id, long_job.spec.id);
  EXPECT_TRUE(s.contains(short_job.spec.id));
  EXPECT_TRUE(s.contains(mid_job.spec.id));
}

TEST(BoundedQueue, SjfIncomingLongJobIsItsOwnVictim) {
  Rng rng{6};
  SjfScheduler s;
  s.set_capacity(2);
  s.enqueue(queued(rng, 1_h));
  s.enqueue(queued(rng, 2_h));
  const auto huge = queued(rng, 4_h);
  const auto victim =
      s.enqueue_bounded(huge, Duration::zero(), TimePoint::origin());
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->spec.id, huge.spec.id);
  EXPECT_EQ(s.size(), 2u);
}

TEST(BoundedQueue, EdfShedsMostHopelessJob) {
  // Deadline family: the victim is the job with the smallest gamma =
  // deadline - ETC along the execution order, not simply the tail. A tight
  // deadline deep in the queue is hopeless even if it sorts early.
  Rng rng{7};
  EdfScheduler s;
  s.set_capacity(2);
  const TimePoint now = TimePoint::origin();
  // EDF order: hopeless (deadline now+1h) first, then comfy (now+10h).
  // gamma(hopeless) = 1h - 1h = 0; gamma(comfy) = 10h - 3h = 7h.
  const auto hopeless = queued(rng, 1_h, now, now + 1_h);
  const auto comfy = queued(rng, 2_h, now, now + 10_h);
  s.enqueue(hopeless);
  s.enqueue(comfy);
  // Incoming with deadline now+5h, ERTp 1h: sorts between the two.
  // New order: hopeless, incoming, comfy. gammas: 0, 5h-2h=3h, 10h-4h=6h.
  const auto incoming = queued(rng, 1_h, now, now + 5_h);
  const auto victim = s.enqueue_bounded(incoming, Duration::zero(), now);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->spec.id, hopeless.spec.id);
  EXPECT_TRUE(s.contains(incoming.spec.id));
  EXPECT_TRUE(s.contains(comfy.spec.id));
}

TEST(BoundedQueue, EdfRunningRemainingShiftsGamma) {
  // A long-running job pushes every completion out; with 4h still running,
  // even the earliest-deadline job becomes hopeless relative to a later
  // arrival with more slack.
  Rng rng{8};
  EdfScheduler s;
  s.set_capacity(1);
  const TimePoint now = TimePoint::origin();
  const auto tight = queued(rng, 1_h, now, now + 2_h);  // gamma = 2h-5h = -3h
  s.enqueue(tight);
  const auto slack = queued(rng, 1_h, now, now + 12_h);  // gamma = 12h-6h = 6h
  const auto victim = s.enqueue_bounded(slack, /*running_remaining=*/4_h, now);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->spec.id, tight.spec.id);
  EXPECT_TRUE(s.contains(slack.spec.id));
}

TEST(BoundedQueue, VictimNotReturnedWhileUnderBound) {
  Rng rng{9};
  FcfsScheduler s;
  s.set_capacity(3);
  EXPECT_FALSE(s.enqueue_bounded(queued(rng, 1_h), Duration::zero(),
                                 TimePoint::origin())
                   .has_value());
  EXPECT_FALSE(s.enqueue_bounded(queued(rng, 1_h), Duration::zero(),
                                 TimePoint::origin())
                   .has_value());
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.at_capacity());
}

}  // namespace
}  // namespace aria::sched
