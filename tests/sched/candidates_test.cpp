// Rescheduling candidate selection (paper §III-D): batch schedulers prefer
// the longest-waiting jobs, deadline schedulers the least-lateness jobs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/policies.hpp"

namespace aria::sched {
namespace {

using namespace aria::literals;

grid::JobSpec job(Rng& rng, Duration ert,
                  std::optional<TimePoint> deadline = {}) {
  grid::JobSpec s;
  s.id = JobId::generate(rng);
  s.ert = ert;
  s.deadline = deadline;
  return s;
}

const TimePoint t0 = TimePoint::origin();

TEST(Candidates, EmptyQueueYieldsNothing) {
  FcfsScheduler s;
  EXPECT_TRUE(s.rescheduling_candidates(2, 0_s, t0).empty());
}

TEST(Candidates, ZeroMaxYieldsNothing) {
  Rng rng{1};
  FcfsScheduler s;
  const auto a = job(rng, 1_h);
  s.enqueue({a, 1_h, t0, 0});
  EXPECT_TRUE(s.rescheduling_candidates(0, 0_s, t0).empty());
}

TEST(Candidates, BatchPrefersLargestWaitingTime) {
  Rng rng{2};
  FcfsScheduler s;
  const auto newer = job(rng, 1_h);
  const auto oldest = job(rng, 1_h);
  const auto middle = job(rng, 1_h);
  s.enqueue({oldest, 1_h, t0, 0});
  s.enqueue({middle, 1_h, t0 + 1_h, 0});
  s.enqueue({newer, 1_h, t0 + 2_h, 0});
  const auto picks = s.rescheduling_candidates(2, 0_s, t0 + 3_h);
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], oldest.id);
  EXPECT_EQ(picks[1], middle.id);
}

TEST(Candidates, MaxCapsSelection) {
  Rng rng{3};
  SjfScheduler s;
  for (int i = 0; i < 10; ++i) {
    const auto j = job(rng, Duration::hours(1 + i % 3));
    s.enqueue({j, j.ert, t0, 0});
  }
  EXPECT_EQ(s.rescheduling_candidates(4, 0_s, t0).size(), 4u);
  EXPECT_EQ(s.rescheduling_candidates(100, 0_s, t0).size(), 10u);
}

TEST(Candidates, DeadlinePrefersLeastLateness) {
  Rng rng{4};
  EdfScheduler s;
  // EDF order: tight (deadline 2h), loose (deadline 10h).
  const auto tight = job(rng, 1_h, t0 + 2_h);
  const auto loose = job(rng, 1_h, t0 + 10_h);
  s.enqueue({loose, 1_h, t0, 0});
  s.enqueue({tight, 1_h, t0, 0});
  // gammas: tight = 2h - 1h = 1h; loose = 10h - 2h = 8h. Least lateness
  // (smallest slack) is picked first.
  const auto picks = s.rescheduling_candidates(1, 0_s, t0);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], tight.id);
}

TEST(Candidates, DeadlineSelectionAccountsForRunningRemainder) {
  Rng rng{5};
  EdfScheduler s;
  const auto a = job(rng, 1_h, t0 + 4_h);
  s.enqueue({a, 1_h, t0, 0});
  // With a 2h remainder the job's ETC is 3h -> slack 1h.
  const auto picks = s.rescheduling_candidates(1, 2_h, t0);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], a.id);
}

TEST(Candidates, BatchStableOnEqualWaits) {
  Rng rng{6};
  FcfsScheduler s;
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    const auto j = job(rng, 1_h);
    ids.push_back(j.id);
    s.enqueue({j, 1_h, t0, 0});
  }
  const auto picks = s.rescheduling_candidates(4, 0_s, t0);
  ASSERT_EQ(picks.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(picks[i], ids[i]);
}

TEST(Candidates, SjfSelectionIgnoresQueuePosition) {
  // The longest-waiting job may sit at the back of an SJF queue; it is
  // still the preferred rescheduling candidate.
  Rng rng{7};
  SjfScheduler s;
  const auto old_long = job(rng, 4_h);
  s.enqueue({old_long, 4_h, t0, 0});
  const auto fresh_short = job(rng, 1_h);
  s.enqueue({fresh_short, 1_h, t0 + 2_h, 0});
  ASSERT_EQ(s.queue().front().spec.id, fresh_short.id);  // SJF order
  const auto picks = s.rescheduling_candidates(1, 0_s, t0 + 3_h);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], old_long.id);  // waiting-time order
}

}  // namespace
}  // namespace aria::sched
