#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/policies.hpp"

namespace aria::sched {
namespace {

using namespace aria::literals;

grid::JobSpec job(Rng& rng, Duration ert,
                  std::optional<TimePoint> deadline = {}, int priority = 0) {
  grid::JobSpec s;
  s.id = JobId::generate(rng);
  s.ert = ert;
  s.deadline = deadline;
  s.priority = priority;
  return s;
}

TEST(Fcfs, ExecutesInArrivalOrder) {
  Rng rng{1};
  FcfsScheduler s;
  std::vector<JobId> ids;
  for (int i = 0; i < 5; ++i) {
    // Decreasing ERT: FCFS must ignore it.
    auto spec = job(rng, Duration::hours(5 - i));
    ids.push_back(spec.id);
    s.enqueue({spec, spec.ert, TimePoint::origin(), 0});
  }
  for (const JobId& id : ids) {
    EXPECT_EQ(s.pop_next()->spec.id, id);
  }
}

TEST(Sjf, ExecutesShortestFirst) {
  Rng rng{2};
  SjfScheduler s;
  const auto j3 = job(rng, 3_h);
  const auto j1 = job(rng, 1_h);
  const auto j2 = job(rng, 2_h);
  for (const auto& spec : {j3, j1, j2}) {
    s.enqueue({spec, spec.ert, TimePoint::origin(), 0});
  }
  EXPECT_EQ(s.pop_next()->spec.id, j1.id);
  EXPECT_EQ(s.pop_next()->spec.id, j2.id);
  EXPECT_EQ(s.pop_next()->spec.id, j3.id);
}

TEST(Sjf, NewShortJobJumpsQueue) {
  Rng rng{3};
  SjfScheduler s;
  const auto big = job(rng, 4_h);
  s.enqueue({big, big.ert, TimePoint::origin(), 0});
  const auto tiny = job(rng, 1_h);
  s.enqueue({tiny, tiny.ert, TimePoint::origin() + 1_min, 0});
  EXPECT_EQ(s.pop_next()->spec.id, tiny.id);
}

TEST(Sjf, TieBrokenByArrival) {
  Rng rng{4};
  SjfScheduler s;
  const auto a = job(rng, 2_h);
  const auto b = job(rng, 2_h);
  s.enqueue({a, a.ert, TimePoint::origin(), 0});
  s.enqueue({b, b.ert, TimePoint::origin(), 0});
  EXPECT_EQ(s.pop_next()->spec.id, a.id);
  EXPECT_EQ(s.pop_next()->spec.id, b.id);
}

TEST(Sjf, OrdersOnGridErtNotLocalErtp) {
  // A job with a shorter grid ERT but a longer ERTp (slow node drew it
  // first) must still run first: the policy keys on ERT.
  Rng rng{5};
  SjfScheduler s;
  const auto shorter = job(rng, 1_h);
  const auto longer = job(rng, 2_h);
  s.enqueue({longer, Duration::minutes(61), TimePoint::origin(), 0});
  s.enqueue({shorter, Duration::minutes(90), TimePoint::origin(), 0});
  EXPECT_EQ(s.pop_next()->spec.id, shorter.id);
}

TEST(Edf, ExecutesEarliestDeadlineFirst) {
  Rng rng{6};
  EdfScheduler s;
  const TimePoint t0 = TimePoint::origin();
  const auto late = job(rng, 1_h, t0 + 10_h);
  const auto soon = job(rng, 1_h, t0 + 2_h);
  const auto mid = job(rng, 1_h, t0 + 5_h);
  for (const auto& spec : {late, soon, mid}) {
    s.enqueue({spec, spec.ert, t0, 0});
  }
  EXPECT_EQ(s.pop_next()->spec.id, soon.id);
  EXPECT_EQ(s.pop_next()->spec.id, mid.id);
  EXPECT_EQ(s.pop_next()->spec.id, late.id);
}

TEST(Edf, JobsWithoutDeadlineSortLast) {
  Rng rng{7};
  EdfScheduler s;
  const auto nodeadline = job(rng, 1_h);
  const auto withdeadline = job(rng, 1_h, TimePoint::origin() + 100_h);
  s.enqueue({nodeadline, 1_h, TimePoint::origin(), 0});
  s.enqueue({withdeadline, 1_h, TimePoint::origin(), 0});
  EXPECT_EQ(s.pop_next()->spec.id, withdeadline.id);
}

TEST(Priority, HigherPriorityFirstFcfsWithin) {
  Rng rng{8};
  PriorityScheduler s;
  const auto low1 = job(rng, 1_h, {}, 0);
  const auto high = job(rng, 1_h, {}, 5);
  const auto low2 = job(rng, 1_h, {}, 0);
  for (const auto& spec : {low1, high, low2}) {
    s.enqueue({spec, spec.ert, TimePoint::origin(), 0});
  }
  EXPECT_EQ(s.pop_next()->spec.id, high.id);
  EXPECT_EQ(s.pop_next()->spec.id, low1.id);
  EXPECT_EQ(s.pop_next()->spec.id, low2.id);
}

TEST(Priority, NegativePrioritiesSortAfterDefault) {
  Rng rng{9};
  PriorityScheduler s;
  const auto background = job(rng, 1_h, {}, -3);
  const auto normal = job(rng, 1_h, {}, 0);
  s.enqueue({background, 1_h, TimePoint::origin(), 0});
  s.enqueue({normal, 1_h, TimePoint::origin(), 0});
  EXPECT_EQ(s.pop_next()->spec.id, normal.id);
}

TEST(FairSjf, BehavesLikeSjfForSimultaneousArrivals) {
  Rng rng{10};
  FairSjfScheduler s{0.5};
  const auto big = job(rng, 4_h);
  const auto small = job(rng, 1_h);
  s.enqueue({big, big.ert, TimePoint::origin(), 0});
  s.enqueue({small, small.ert, TimePoint::origin(), 0});
  EXPECT_EQ(s.pop_next()->spec.id, small.id);
}

TEST(FairSjf, OldJobsEventuallyBeatShortNewcomers) {
  // A 4h job enqueued at t=0 has key 4h. A 1h job arriving later than
  // t = (4h-1h)/aging = 6h (aging 0.5) keys above it.
  Rng rng{11};
  FairSjfScheduler s{0.5};
  const auto old_big = job(rng, 4_h);
  s.enqueue({old_big, old_big.ert, TimePoint::origin(), 0});
  const auto new_small = job(rng, 1_h);
  s.enqueue({new_small, new_small.ert, TimePoint::origin() + 7_h, 0});
  EXPECT_EQ(s.pop_next()->spec.id, old_big.id);
}

TEST(FairSjf, RecentShortJobStillJumps) {
  Rng rng{12};
  FairSjfScheduler s{0.5};
  const auto old_big = job(rng, 4_h);
  s.enqueue({old_big, old_big.ert, TimePoint::origin(), 0});
  const auto new_small = job(rng, 1_h);
  s.enqueue({new_small, new_small.ert, TimePoint::origin() + 1_h, 0});
  EXPECT_EQ(s.pop_next()->spec.id, new_small.id);
}

TEST(FairSjf, ZeroAgingIsPlainSjf) {
  Rng rng{13};
  FairSjfScheduler s{0.0};
  const auto big = job(rng, 4_h);
  s.enqueue({big, big.ert, TimePoint::origin(), 0});
  const auto small = job(rng, 1_h);
  s.enqueue({small, small.ert, TimePoint::origin() + 100_h, 0});
  EXPECT_EQ(s.pop_next()->spec.id, small.id);
}

}  // namespace
}  // namespace aria::sched
