// Hand-computed checks of the two ARiA cost functions (paper §III-C).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sched/policies.hpp"

namespace aria::sched {
namespace {

using namespace aria::literals;

grid::JobSpec job(Rng& rng, Duration ert,
                  std::optional<TimePoint> deadline = {}) {
  grid::JobSpec s;
  s.id = JobId::generate(rng);
  s.ert = ert;
  s.deadline = deadline;
  return s;
}

const TimePoint t0 = TimePoint::origin();

// --------------------------- ETTC (batch) ---------------------------------

TEST(EttcCost, EmptyIdleNodeQuotesOwnRuntime) {
  Rng rng{1};
  FcfsScheduler s;
  const auto j = job(rng, 2_h);
  EXPECT_DOUBLE_EQ(s.cost_of_adding(j, 1_h, 0_s, t0), (1_h).to_seconds());
}

TEST(EttcCost, IncludesRunningRemainder) {
  Rng rng{2};
  FcfsScheduler s;
  const auto j = job(rng, 2_h);
  EXPECT_DOUBLE_EQ(s.cost_of_adding(j, 2_h, 30_min, t0),
                   (2_h + 30_min).to_seconds());
}

TEST(EttcCost, FcfsSumsWholeQueue) {
  Rng rng{3};
  FcfsScheduler s;
  const auto a = job(rng, 1_h);
  const auto b = job(rng, 2_h);
  s.enqueue({a, 1_h, t0, 0});
  s.enqueue({b, 2_h, t0, 0});
  const auto j = job(rng, 30_min);
  // running 15m + 1h + 2h + 30m = 3h45m.
  EXPECT_DOUBLE_EQ(s.cost_of_adding(j, 30_min, 15_min, t0),
                   (3_h + 45_min).to_seconds());
}

TEST(EttcCost, SjfCountsOnlyShorterJobs) {
  Rng rng{4};
  SjfScheduler s;
  const auto shorter = job(rng, 1_h);
  const auto longer = job(rng, 3_h);
  s.enqueue({shorter, 1_h, t0, 0});
  s.enqueue({longer, 3_h, t0, 0});
  const auto j = job(rng, 2_h);  // sits between the two
  // running 0 + shorter 1h + own 2h; the 3h job is behind it.
  EXPECT_DOUBLE_EQ(s.cost_of_adding(j, 2_h, 0_s, t0), (3_h).to_seconds());
}

TEST(EttcCost, SjfQuoteIgnoresLongerQueueTail) {
  Rng rng{5};
  SjfScheduler s;
  for (int i = 0; i < 5; ++i) {
    const auto big = job(rng, 4_h);
    s.enqueue({big, 4_h, t0, 0});
  }
  const auto j = job(rng, 1_h);
  // A short job jumps the whole queue of 4h jobs.
  EXPECT_DOUBLE_EQ(s.cost_of_adding(j, 1_h, 10_min, t0),
                   (1_h + 10_min).to_seconds());
}

TEST(EttcCost, CurrentCostOfQueuedJob) {
  Rng rng{6};
  FcfsScheduler s;
  const auto a = job(rng, 1_h);
  const auto b = job(rng, 2_h);
  s.enqueue({a, 1_h, t0, 0});
  s.enqueue({b, 2_h, t0, 0});
  EXPECT_DOUBLE_EQ(s.current_cost(a.id, 30_min, t0), (1_h + 30_min).to_seconds());
  EXPECT_DOUBLE_EQ(s.current_cost(b.id, 30_min, t0), (3_h + 30_min).to_seconds());
}

TEST(EttcCost, CurrentCostOfUnknownJobIsInfinite) {
  Rng rng{7};
  FcfsScheduler s;
  EXPECT_TRUE(std::isinf(s.current_cost(JobId::generate(rng), 0_s, t0)));
}

TEST(EttcCost, LowerOnFasterNode) {
  // Same scheduler state; the faster node quotes a smaller ERTp for the same
  // job, so its ETTC is lower — the initiator will pick it.
  Rng rng{8};
  FcfsScheduler fast, slow;
  const auto j = job(rng, 2_h);
  const double fast_cost = fast.cost_of_adding(j, j.ert_on(2.0), 0_s, t0);
  const double slow_cost = slow.cost_of_adding(j, j.ert_on(1.0), 0_s, t0);
  EXPECT_LT(fast_cost, slow_cost);
}

// --------------------------- NAL (deadline) --------------------------------

TEST(NalCost, SingleOnTimeJobIsNegativeSlack) {
  Rng rng{10};
  EdfScheduler s;
  const auto j = job(rng, 1_h, t0 + 3_h);
  // ETC = 1h, gamma = 3h - 1h = 2h, all on time -> cost = -2h.
  EXPECT_DOUBLE_EQ(s.cost_of_adding(j, 1_h, 0_s, t0), -(2_h).to_seconds());
}

TEST(NalCost, SingleLateJobIsPositiveOverrun) {
  Rng rng{11};
  EdfScheduler s;
  const auto j = job(rng, 2_h, t0 + 1_h);
  // ETC = 2h, gamma = -1h -> cost = +1h.
  EXPECT_DOUBLE_EQ(s.cost_of_adding(j, 2_h, 0_s, t0), (1_h).to_seconds());
}

TEST(NalCost, AllOnTimeSumsAllSlacks) {
  Rng rng{12};
  EdfScheduler s;
  const auto a = job(rng, 1_h, t0 + 4_h);
  s.enqueue({a, 1_h, t0, 0});
  const auto j = job(rng, 1_h, t0 + 6_h);
  // EDF order: a (deadline 4h) then j (deadline 6h).
  // ETC_a = 1h -> gamma_a = 3h; ETC_j = 2h -> gamma_j = 4h.
  // All on time -> cost = -(3h + 4h) = -7h.
  EXPECT_DOUBLE_EQ(s.cost_of_adding(j, 1_h, 0_s, t0), -(7_h).to_seconds());
}

TEST(NalCost, OneLateJobFlipsSignAndIgnoresOnTimeSlack) {
  Rng rng{13};
  EdfScheduler s;
  const auto a = job(rng, 2_h, t0 + 2_h);  // just on time alone
  s.enqueue({a, 2_h, t0, 0});
  const auto j = job(rng, 2_h, t0 + 3_h);
  // EDF order: a then j. ETC_a = 2h (gamma 0, on time), ETC_j = 4h
  // (gamma = -1h, late). Cost = +1h: on-time jobs contribute 0 when any
  // job is late (delta = 0 branch).
  EXPECT_DOUBLE_EQ(s.cost_of_adding(j, 2_h, 0_s, t0), (1_h).to_seconds());
}

TEST(NalCost, MultipleLateJobsAccumulate) {
  Rng rng{14};
  EdfScheduler s;
  const auto a = job(rng, 2_h, t0 + 1_h);  // late by 1h alone
  s.enqueue({a, 2_h, t0, 0});
  const auto j = job(rng, 2_h, t0 + 2_h);
  // Order: a (deadline 1h), j (deadline 2h). ETC_a = 2h -> gamma -1h;
  // ETC_j = 4h -> gamma -2h. Cost = 1h + 2h = 3h.
  EXPECT_DOUBLE_EQ(s.cost_of_adding(j, 2_h, 0_s, t0), (3_h).to_seconds());
}

TEST(NalCost, RunningRemainderDelaysEverything) {
  Rng rng{15};
  EdfScheduler s;
  const auto j = job(rng, 1_h, t0 + 3_h);
  // remaining 30m: ETC = 1h30m, gamma = 1h30m -> cost = -1h30m.
  EXPECT_DOUBLE_EQ(s.cost_of_adding(j, 1_h, 30_min, t0),
                   -(1_h + 30_min).to_seconds());
}

TEST(NalCost, AbsoluteDeadlinesUseNow) {
  Rng rng{16};
  EdfScheduler s;
  const auto j = job(rng, 1_h, t0 + 3_h);
  // At t=1h the same job has one hour less slack: gamma = 3h - (1h+1h) = 1h.
  EXPECT_DOUBLE_EQ(s.cost_of_adding(j, 1_h, 0_s, t0 + 1_h),
                   -(1_h).to_seconds());
}

TEST(NalCost, CurrentCostEvaluatesWholeQueue) {
  Rng rng{17};
  EdfScheduler s;
  const auto a = job(rng, 1_h, t0 + 2_h);
  const auto b = job(rng, 1_h, t0 + 5_h);
  s.enqueue({a, 1_h, t0, 0});
  s.enqueue({b, 1_h, t0, 0});
  // gamma_a = 2h - 1h = 1h; gamma_b = 5h - 2h = 3h; all on time -> -4h.
  EXPECT_DOUBLE_EQ(s.current_cost(a.id, 0_s, t0), -(4_h).to_seconds());
  // Same value regardless of which queued job is asked about (NAL is a
  // queue-level cost).
  EXPECT_DOUBLE_EQ(s.current_cost(b.id, 0_s, t0), -(4_h).to_seconds());
}

TEST(NalCost, BetterOfferOnEmptyNode) {
  // The rescheduling rule: a node whose NAL-with-the-job is lower wins.
  Rng rng{18};
  EdfScheduler loaded, empty;
  const auto filler = job(rng, 3_h, t0 + 4_h);
  loaded.enqueue({filler, 3_h, t0, 0});
  const auto j = job(rng, 1_h, t0 + 2_h);
  const double cost_loaded = loaded.cost_of_adding(j, 1_h, 0_s, t0);
  const double cost_empty = empty.cost_of_adding(j, 1_h, 0_s, t0);
  // On the loaded node the new job runs first (earlier deadline): ETC_j=1h
  // (gamma 1h), filler ETC=4h (gamma 0) -> all on time, cost = -1h.
  // On the empty node: cost = -1h... but the loaded node misses nothing.
  EXPECT_DOUBLE_EQ(cost_empty, -(1_h).to_seconds());
  EXPECT_DOUBLE_EQ(cost_loaded, -(1_h).to_seconds());
}

TEST(NalCost, LatenessBeatsAccumulatedSlack) {
  // A node that would make the job late quotes a positive cost and loses to
  // any node that keeps everything on time.
  Rng rng{19};
  EdfScheduler busy, idle;
  const auto filler = job(rng, 4_h, t0 + 4_h);
  busy.enqueue({filler, 4_h, t0, 0});
  const auto j = job(rng, 2_h, t0 + 3_h);
  const double cost_busy = busy.cost_of_adding(j, 2_h, 0_s, t0);
  const double cost_idle = idle.cost_of_adding(j, 2_h, 0_s, t0);
  EXPECT_GT(cost_busy, 0.0);
  EXPECT_LT(cost_idle, 0.0);
  EXPECT_LT(cost_idle, cost_busy);
}

}  // namespace
}  // namespace aria::sched
