#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/policies.hpp"

namespace aria::sched {
namespace {

using namespace aria::literals;

grid::JobSpec job(Rng& rng, Duration ert) {
  grid::JobSpec s;
  s.id = JobId::generate(rng);
  s.ert = ert;
  return s;
}

QueuedJob queued(Rng& rng, Duration ert, TimePoint at = TimePoint::origin()) {
  return QueuedJob{job(rng, ert), ert, at, 0};
}

TEST(SchedulingQueue, StartsEmpty) {
  FcfsScheduler s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.pop_next().has_value());
}

TEST(SchedulingQueue, EnqueuePopRoundTrip) {
  Rng rng{1};
  FcfsScheduler s;
  const auto q = queued(rng, 1_h);
  s.enqueue(q);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(q.spec.id));
  const auto popped = s.pop_next();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->spec.id, q.spec.id);
  EXPECT_TRUE(s.empty());
}

TEST(SchedulingQueue, FindReturnsQueuedEntry) {
  Rng rng{2};
  FcfsScheduler s;
  const auto q = queued(rng, 2_h);
  s.enqueue(q);
  const QueuedJob* found = s.find(q.spec.id);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->ertp, 2_h);
  EXPECT_EQ(s.find(JobId::generate(rng)), nullptr);
}

TEST(SchedulingQueue, RemoveMiddleEntry) {
  Rng rng{3};
  FcfsScheduler s;
  const auto a = queued(rng, 1_h);
  const auto b = queued(rng, 2_h);
  const auto c = queued(rng, 3_h);
  s.enqueue(a);
  s.enqueue(b);
  s.enqueue(c);
  EXPECT_TRUE(s.remove(b.spec.id));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.contains(b.spec.id));
  EXPECT_FALSE(s.remove(b.spec.id));  // second removal fails
  EXPECT_EQ(s.pop_next()->spec.id, a.spec.id);
  EXPECT_EQ(s.pop_next()->spec.id, c.spec.id);
}

TEST(SchedulingQueue, SeqIsAssignedByScheduler) {
  Rng rng{4};
  FcfsScheduler s;
  QueuedJob q1 = queued(rng, 1_h);
  QueuedJob q2 = queued(rng, 1_h);
  q1.seq = 999;  // must be overwritten
  q2.seq = 5;
  s.enqueue(q1);
  s.enqueue(q2);
  EXPECT_EQ(s.queue()[0].spec.id, q1.spec.id);
  EXPECT_LT(s.queue()[0].seq, s.queue()[1].seq);
}

TEST(SchedulingQueue, QueueViewIsInExecutionOrder) {
  Rng rng{5};
  SjfScheduler s;
  const auto big = queued(rng, 4_h);
  const auto small = queued(rng, 1_h);
  const auto mid = queued(rng, 2_h);
  s.enqueue(big);
  s.enqueue(small);
  s.enqueue(mid);
  ASSERT_EQ(s.queue().size(), 3u);
  EXPECT_EQ(s.queue()[0].spec.id, small.spec.id);
  EXPECT_EQ(s.queue()[1].spec.id, mid.spec.id);
  EXPECT_EQ(s.queue()[2].spec.id, big.spec.id);
}

TEST(SchedulingQueue, EttcOfQueuedJobs) {
  Rng rng{6};
  FcfsScheduler s;
  const auto a = queued(rng, 1_h);
  const auto b = queued(rng, 2_h);
  s.enqueue(a);
  s.enqueue(b);
  EXPECT_EQ(s.ettc_of(a.spec.id, 30_min), 1_h + 30_min);
  EXPECT_EQ(s.ettc_of(b.spec.id, 30_min), 3_h + 30_min);
  EXPECT_EQ(s.ettc_of(JobId::generate(rng), 0_s), Duration::max());
}

TEST(SchedulingQueue, MakeSchedulerCoversAllKinds) {
  for (auto kind : {SchedulerKind::kFcfs, SchedulerKind::kSjf,
                    SchedulerKind::kEdf, SchedulerKind::kPriority,
                    SchedulerKind::kFairSjf}) {
    const auto s = make_scheduler(kind);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind(), kind);
  }
}

TEST(SchedulingQueue, CostFamilies) {
  EXPECT_EQ(make_scheduler(SchedulerKind::kFcfs)->cost_family(),
            CostFamily::kBatch);
  EXPECT_EQ(make_scheduler(SchedulerKind::kSjf)->cost_family(),
            CostFamily::kBatch);
  EXPECT_EQ(make_scheduler(SchedulerKind::kEdf)->cost_family(),
            CostFamily::kDeadline);
  EXPECT_EQ(make_scheduler(SchedulerKind::kPriority)->cost_family(),
            CostFamily::kBatch);
  EXPECT_EQ(make_scheduler(SchedulerKind::kFairSjf)->cost_family(),
            CostFamily::kBatch);
}

// Exercises the protected resort() hook provided for policies whose keys
// can change after enqueue (e.g. operator-adjusted priorities).
class MutablePriorityScheduler : public LocalScheduler {
 public:
  SchedulerKind kind() const override { return SchedulerKind::kPriority; }
  CostFamily cost_family() const override { return CostFamily::kBatch; }

  void boost(const JobId& id, int priority) {
    for (auto& q : queue_) {
      if (q.spec.id == id) q.spec.priority = priority;
    }
    resort();
  }

 protected:
  bool before(const QueuedJob& a, const QueuedJob& b) const override {
    if (a.spec.priority != b.spec.priority) {
      return a.spec.priority > b.spec.priority;
    }
    return a.seq < b.seq;
  }
};

TEST(SchedulingQueue, ResortReordersAfterKeyMutation) {
  Rng rng{7};
  MutablePriorityScheduler s;
  const auto first = queued(rng, 1_h);
  const auto second = queued(rng, 1_h);
  s.enqueue(first);
  s.enqueue(second);
  ASSERT_EQ(s.queue().front().spec.id, first.spec.id);
  s.boost(second.spec.id, 10);
  EXPECT_EQ(s.queue().front().spec.id, second.spec.id);
  EXPECT_EQ(s.pop_next()->spec.id, second.spec.id);
  EXPECT_EQ(s.pop_next()->spec.id, first.spec.id);
}

TEST(SchedulingQueue, KindNames) {
  EXPECT_EQ(to_string(SchedulerKind::kFcfs), "FCFS");
  EXPECT_EQ(to_string(SchedulerKind::kSjf), "SJF");
  EXPECT_EQ(to_string(SchedulerKind::kEdf), "EDF");
  EXPECT_EQ(to_string(SchedulerKind::kPriority), "PRIORITY");
  EXPECT_EQ(to_string(SchedulerKind::kFairSjf), "FAIR-SJF");
}

}  // namespace
}  // namespace aria::sched
