// Cross-check properties of the cost functions: quotes must be honest.
// The cost a node quotes for a hypothetical job (cost_of_adding) must equal
// the cost observed right after actually enqueueing it (current_cost), for
// every policy and any queue state — this is what makes ACCEPT offers
// trustworthy in the protocol. Checked over randomized queues.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/policies.hpp"

namespace aria::sched {
namespace {

using namespace aria::literals;

grid::JobSpec random_job(Rng& rng, bool deadline) {
  grid::JobSpec j;
  j.id = JobId::generate(rng);
  j.ert = Duration::minutes(rng.uniform_int(60, 240));
  if (deadline) {
    j.deadline = TimePoint::origin() +
                 Duration::minutes(rng.uniform_int(120, 1200));
  }
  return j;
}

class QuoteConsistency
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  static std::unique_ptr<LocalScheduler> scheduler_for(int index) {
    switch (index) {
      case 0: return std::make_unique<FcfsScheduler>();
      case 1: return std::make_unique<SjfScheduler>();
      case 2: return std::make_unique<EdfScheduler>();
      case 3: return std::make_unique<PriorityScheduler>();
      default: return std::make_unique<FairSjfScheduler>();
    }
  }
};

TEST_P(QuoteConsistency, CostOfAddingMatchesCostAfterEnqueue) {
  const auto& [sched_index, seed] = GetParam();
  Rng rng{seed};
  auto sched = scheduler_for(sched_index);
  const bool deadline = sched->cost_family() == CostFamily::kDeadline;
  const TimePoint now = TimePoint::origin() + 1_h;
  const Duration running_remaining =
      Duration::minutes(rng.uniform_int(0, 90));

  // Random pre-existing queue.
  const int depth = static_cast<int>(rng.uniform_int(0, 12));
  for (int i = 0; i < depth; ++i) {
    auto spec = random_job(rng, deadline);
    sched->enqueue({spec, spec.ert, now, 0});
  }

  for (int trial = 0; trial < 20; ++trial) {
    auto spec = random_job(rng, deadline);
    const Duration ertp = spec.ert.scaled(1.0 / rng.uniform(1.0, 2.0));
    const double quote =
        sched->cost_of_adding(spec, ertp, running_remaining, now);
    sched->enqueue({spec, ertp, now, 0});
    const double observed =
        sched->current_cost(spec.id, running_remaining, now);
    ASSERT_NEAR(quote, observed, 1e-6)
        << to_string(sched->kind()) << " trial " << trial << " depth "
        << sched->size();
  }
}

std::string quote_case_name(
    const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
  static const char* kNames[] = {"fcfs", "sjf", "edf", "priority", "fairsjf"};
  return std::string(kNames[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, QuoteConsistency,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(std::uint64_t{11}, std::uint64_t{22},
                                         std::uint64_t{33})),
    quote_case_name);

// NAL sign property: negative iff every queued job would meet its deadline.
TEST(NalProperty, SignTracksFeasibility) {
  Rng rng{7};
  for (int trial = 0; trial < 200; ++trial) {
    EdfScheduler sched;
    const TimePoint now = TimePoint::origin();
    const int depth = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < depth; ++i) {
      auto spec = random_job(rng, true);
      sched.enqueue({spec, spec.ert, now, 0});
    }
    const Duration remaining = Duration::minutes(rng.uniform_int(0, 60));
    // Reference computation straight from the paper's formula.
    Duration t = remaining;
    bool any_late = false;
    for (const QueuedJob& q : sched.queue()) {
      t += q.ertp;
      if (*q.spec.deadline - (now + t) < Duration::zero()) any_late = true;
    }
    const double nal =
        sched.current_cost(sched.queue().front().spec.id, remaining, now);
    if (any_late) {
      EXPECT_GT(nal, 0.0) << "trial " << trial;
    } else {
      EXPECT_LT(nal, 0.0) << "trial " << trial;
    }
  }
}

// ETTC reference cross-check: independent O(n^2) recomputation.
TEST(EttcProperty, MatchesIndependentReference) {
  Rng rng{13};
  for (int trial = 0; trial < 100; ++trial) {
    SjfScheduler sched;
    const TimePoint now = TimePoint::origin();
    const int depth = static_cast<int>(rng.uniform_int(1, 10));
    for (int i = 0; i < depth; ++i) {
      auto spec = random_job(rng, false);
      sched.enqueue({spec, spec.ert, now, 0});
    }
    const Duration remaining = Duration::minutes(rng.uniform_int(0, 60));
    // Reference: walk the queue in order, accumulating service times.
    Duration acc = remaining;
    for (const QueuedJob& q : sched.queue()) {
      acc += q.ertp;
      EXPECT_EQ(sched.ettc_of(q.spec.id, remaining), acc);
      EXPECT_DOUBLE_EQ(sched.current_cost(q.spec.id, remaining, now),
                       acc.to_seconds());
    }
  }
}

// Queue order invariance: popping yields exactly the policy order, and
// removals never disturb the relative order of the remainder.
TEST(QueueProperty, PopOrderIsSortedAndStableUnderRemoval) {
  Rng rng{17};
  for (int trial = 0; trial < 50; ++trial) {
    SjfScheduler sched;
    std::vector<JobId> ids;
    for (int i = 0; i < 10; ++i) {
      auto spec = random_job(rng, false);
      ids.push_back(spec.id);
      sched.enqueue({spec, spec.ert, TimePoint::origin(), 0});
    }
    // Remove three random entries.
    for (int i = 0; i < 3; ++i) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
      sched.remove(ids[pick]);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    Duration prev = Duration::zero();
    std::uint64_t prev_seq = 0;
    bool first = true;
    while (auto q = sched.pop_next()) {
      if (!first) {
        ASSERT_TRUE(q->spec.ert > prev ||
                    (q->spec.ert == prev && q->seq > prev_seq));
      }
      prev = q->spec.ert;
      prev_seq = q->seq;
      first = false;
    }
  }
}

}  // namespace
}  // namespace aria::sched
