// Quickstart: the smallest useful ARiA simulation.
//
// Builds a 50-node heterogeneous grid with mixed FCFS/SJF local schedulers,
// submits 30 jobs to random nodes, runs the protocol with dynamic
// rescheduling, and prints what happened to every job.
//
//   ./quickstart [seed]

#include <cstdlib>
#include <iostream>

#include "workload/engine.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace aria;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // Start from the paper's iMixed scenario and shrink it to demo size.
  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 50;
  cfg.job_count = 30;
  cfg.submission_start = Duration::minutes(1);
  cfg.submission_interval = Duration::seconds(30);
  cfg.horizon = Duration::hours(30);

  std::cout << "ARiA quickstart: " << cfg.node_count << " nodes, "
            << cfg.job_count << " jobs, seed " << seed << "\n\n";

  workload::GridSimulation sim{cfg, seed};
  workload::RunResult result = sim.run();

  std::cout << "overlay: " << result.final_node_count << " nodes, "
            << result.overlay_links << " links, avg path length "
            << result.overlay_avg_path_length << "\n";
  std::cout << "completed " << result.completed() << "/" << cfg.job_count
            << " jobs, " << result.tracker.total_reschedules()
            << " dynamic reschedules\n";
  std::cout << "mean completion time: " << result.mean_completion_minutes()
            << " min (wait " << result.mean_waiting_minutes() << " + exec "
            << result.mean_execution_minutes() << ")\n\n";

  // Per-job story, ordered by submission time.
  std::vector<const proto::JobRecord*> jobs;
  for (const auto& [id, rec] : result.tracker.records()) jobs.push_back(&rec);
  std::sort(jobs.begin(), jobs.end(),
            [](const auto* a, const auto* b) { return a->submitted < b->submitted; });

  std::cout << "job        submitted  moves  waited     ran        on\n";
  std::cout << "---------------------------------------------------------\n";
  for (const auto* rec : jobs) {
    std::cout << rec->spec.id.to_string().substr(0, 8) << "   "
              << rec->submitted.to_string();
    if (rec->done()) {
      std::cout << "     " << rec->reschedule_count() << "      "
                << rec->waiting_time().to_string() << "     "
                << rec->execution_time().to_string() << "    "
                << rec->executor.to_string();
    } else {
      std::cout << "     (incomplete)";
    }
    std::cout << "\n";
  }

  std::cout << "\ntraffic:\n";
  for (const auto& [type, entry] : result.traffic.by_type()) {
    std::cout << "  " << type << ": " << entry.messages << " msgs, "
              << entry.bytes / 1024 << " KiB\n";
  }
  return result.completed() == cfg.job_count ? 0 : 1;
}
