// Failsafe demo: what happens when grid machines die mid-protocol.
//
// Builds a small grid, submits work, then kills the busiest executor.
// Without failsafe, its jobs are simply gone (the paper's base protocol
// leaves crash handling to "failsafe mechanisms" it only sketches). With
// failsafe enabled, initiators watch their jobs through NOTIFY heartbeats
// and re-flood the REQUEST when the watchdog expires — every job still
// completes, at-least-once.
//
//   ./failsafe_demo [seed]

#include <cstdlib>
#include <iostream>

#include "core/config.hpp"
#include "core/node.hpp"
#include "core/tracker.hpp"
#include "grid/profile_gen.hpp"
#include "overlay/bootstrap.hpp"
#include "overlay/flooding.hpp"
#include "sched/policies.hpp"
#include "sim/latency.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

using namespace aria;
using namespace aria::literals;

namespace {

struct DemoGrid {
  explicit DemoGrid(std::uint64_t seed, bool failsafe) : rng{seed} {
    net = std::make_unique<sim::Network>(
        sim, std::make_unique<sim::GeoLatencyModel>(), rng.fork(1));
    relay = std::make_unique<overlay::FloodRelay>(topo, rng.fork(2));
    config.accept_timeout = 2_s;
    config.failsafe = failsafe;
    config.failsafe_factor = 1.5;
    config.failsafe_margin = 10_min;
    config.inform_period = 2_min;
  }
  ~DemoGrid() { nodes.clear(); }

  proto::AriaNode& add_node(double perf) {
    grid::NodeProfile p;
    p.arch = grid::Architecture::kAmd64;
    p.os = grid::OperatingSystem::kLinux;
    p.memory_gb = 16;
    p.disk_gb = 16;
    p.performance_index = perf;
    proto::NodeContext ctx;
    ctx.sim = &sim;
    ctx.net = net.get();
    ctx.topo = &topo;
    ctx.relay = relay.get();
    ctx.config = &config;
    ctx.ert_error = &ert_error;
    ctx.observer = &tracker;
    const NodeId id{static_cast<std::uint32_t>(nodes.size())};
    topo.add_node(id);
    nodes.push_back(std::make_unique<proto::AriaNode>(
        ctx, id, p, sched::make_scheduler(sched::SchedulerKind::kFcfs),
        rng.fork(100 + id.value())));
    nodes.back()->start();
    return *nodes.back();
  }

  sim::Simulator sim;
  overlay::Topology topo;
  proto::AriaConfig config;
  grid::ErtErrorModel ert_error{grid::ErtErrorMode::kSymmetric, 0.1};
  proto::JobTracker tracker;
  Rng rng;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<overlay::FloodRelay> relay;
  std::vector<std::unique_ptr<proto::AriaNode>> nodes;
};

struct Outcome {
  std::size_t completed{0};
  std::uint64_t recoveries{0};
  std::size_t violations{0};
};

Outcome run_story(std::uint64_t seed, bool failsafe) {
  DemoGrid g{seed, failsafe};
  // Ten machines in a ring with chords; node 9 is by far the fastest, so
  // it attracts work — and then dies.
  for (int i = 0; i < 9; ++i) g.add_node(1.0 + 0.05 * i);
  auto& doomed = g.add_node(2.0);
  for (std::uint32_t i = 0; i < 10; ++i) {
    g.topo.add_link(NodeId{i}, NodeId{(i + 1) % 10});
    g.topo.add_link(NodeId{i}, NodeId{(i + 3) % 10});
  }

  // 12 jobs within a minute: several pile onto the fast node.
  for (int i = 0; i < 12; ++i) {
    grid::JobSpec j;
    j.id = JobId::generate(g.rng);
    j.requirements.arch = grid::Architecture::kAmd64;
    j.requirements.os = grid::OperatingSystem::kLinux;
    j.requirements.min_memory_gb = 1;
    j.requirements.min_disk_gb = 1;
    j.ert = 90_min;
    const auto pick = static_cast<std::size_t>(g.rng.uniform_int(0, 8));
    g.sim.schedule_at(TimePoint::origin() + Duration::seconds(5 * i),
                      [&g, j, pick] { g.nodes[pick]->submit(j); });
  }

  // 20 minutes in, the fast node dies (process gone, queue lost).
  g.sim.schedule_at(TimePoint::origin() + 20_min, [&g, &doomed] {
    doomed.stop();
    g.topo.remove_node(doomed.id());
  });

  g.sim.run_until(TimePoint::origin() + 24_h);
  return {g.tracker.completed_count(), g.tracker.total_recoveries(),
          g.tracker.violations().size()};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  std::cout << "scenario: 10 machines, 12 jobs, the fastest machine crashes "
               "20 minutes in\n\n";
  const Outcome off = run_story(seed, /*failsafe=*/false);
  const Outcome on = run_story(seed, /*failsafe=*/true);

  std::cout << "without failsafe: " << off.completed
            << "/12 jobs completed (" << 12 - off.completed
            << " lost with the crashed machine)\n";
  std::cout << "with failsafe:    " << on.completed << "/12 jobs completed, "
            << on.recoveries << " watchdog recoveries\n";
  std::cout << "lifecycle violations: " << off.violations + on.violations
            << "\n";

  const bool ok = on.completed == 12 && off.completed <= on.completed &&
                  off.violations + on.violations == 0;
  std::cout << (ok ? "\nfailsafe recovered everything the crash destroyed\n"
                   : "\nunexpected outcome\n");
  return ok ? 0 : 1;
}
