// Expanding grid: demonstrates elasticity — a small overloaded grid absorbs
// a wave of new machines mid-run, and dynamic rescheduling migrates queued
// work onto them (paper §V-B / Fig. 5, as a library-user walkthrough).
//
//   ./expanding_grid [seed]

#include <cstdlib>
#include <iostream>

#include "metrics/report.hpp"
#include "workload/engine.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace aria;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  // A deliberately overloaded small grid...
  workload::ScenarioConfig cfg = workload::scenario_by_name("iExpanding");
  cfg.node_count = 60;
  cfg.job_count = 150;
  cfg.submission_start = Duration::minutes(2);
  cfg.submission_interval = Duration::seconds(5);
  // ...that doubles in size starting 30 minutes in.
  cfg.expansion->start = Duration::minutes(30);
  cfg.expansion->mean_interval = Duration::seconds(20);
  cfg.expansion->target_node_count = 120;
  cfg.horizon = Duration::hours(30);

  std::cout << "expanding grid: " << cfg.node_count << " -> "
            << cfg.expansion->target_node_count << " nodes, "
            << cfg.job_count << " jobs, seed " << seed << "\n\n";

  // Run the same story twice: with and without dynamic rescheduling.
  workload::ScenarioConfig plain = cfg;
  plain.name = "no-resched";
  plain.aria.dynamic_rescheduling = false;
  workload::ScenarioConfig dynamic = cfg;
  dynamic.name = "with-resched";

  const workload::RunResult rp = workload::run_scenario(plain, seed);
  const workload::RunResult rd = workload::run_scenario(dynamic, seed);

  std::cout << "grid size and idle nodes over time:\n";
  metrics::Series size = rd.node_count_series;
  size.set_label("nodes");
  metrics::Series ip = rp.idle_series;
  ip.set_label("idle(no-resched)");
  metrics::Series idn = rd.idle_series;
  idn.set_label("idle(with-resched)");
  metrics::print_series_matrix(std::cout, {size.downsampled(15),
                                           ip.downsampled(15),
                                           idn.downsampled(15)},
                               25);

  std::cout << "\n                       no-resched   with-resched\n";
  std::cout << "mean completion [min]  "
            << metrics::Table::num(rp.mean_completion_minutes()) << "        "
            << metrics::Table::num(rd.mean_completion_minutes()) << "\n";
  std::cout << "mean waiting [min]     "
            << metrics::Table::num(rp.mean_waiting_minutes()) << "        "
            << metrics::Table::num(rd.mean_waiting_minutes()) << "\n";
  std::cout << "reschedules            " << rp.tracker.total_reschedules()
            << "            " << rd.tracker.total_reschedules() << "\n";
  std::cout << "completed              " << rp.completed() << "          "
            << rd.completed() << "\n";

  const bool ok = rp.completed() == cfg.job_count &&
                  rd.completed() == cfg.job_count &&
                  rd.tracker.violations().empty() &&
                  rp.tracker.violations().empty();
  std::cout << "\nrescheduling exploited the new machines: "
            << (rd.mean_completion_minutes() < rp.mean_completion_minutes()
                    ? "yes"
                    : "no")
            << "\n";
  return ok ? 0 : 1;
}
