// Unreliable grid: the full fault plane against a shrunk iMixed workload.
//
// Turns on everything docs/faults.md describes at once — 5% message loss,
// 2% duplication, latency spikes, a half-hour network partition, and node
// churn — and checks the two guarantees the fault plane plus the hardened
// protocol make:
//
//   1. No stranded jobs: every submitted job reaches a terminal state
//      (completed, unschedulable, or abandoned after the recovery budget).
//   2. The books balance: the network's fault counters reconcile exactly
//      with the events the plane says it injected.
//
//   ./unreliable_grid [seed]

#include <cstdlib>
#include <iostream>

#include "workload/engine.hpp"
#include "workload/scenario.hpp"

using namespace aria;
using namespace aria::literals;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 40;
  cfg.job_count = 60;
  cfg.submission_start = 5_min;
  cfg.submission_interval = 30_s;
  cfg.horizon = 30_h;

  // The fault cocktail. Churn implies failsafe (crashed queues are lost) and
  // loss implies acknowledged delegation (an ASSIGN can vanish) — the same
  // coupling `aria_sim --loss ... --churn` applies.
  cfg.faults.enabled = true;
  cfg.faults.seed = 0x5EED;
  cfg.faults.loss = 0.05;
  cfg.faults.duplicate = 0.02;
  cfg.faults.spike = 0.02;
  cfg.faults.churn = sim::FaultConfig::Churn{
      .mean_uptime = 4_h, .mean_downtime = 20_min,
      .node_fraction = 0.25, .start = 30_min};
  cfg.faults.partitions.push_back(
      sim::FaultConfig::Partition{.start = 2_h, .duration = 30_min,
                                  .fraction = 0.5});
  cfg.aria.failsafe = true;
  cfg.aria.assign_ack = true;

  const workload::RunResult r = workload::run_scenario(cfg, seed);

  const std::size_t terminal = r.completed() +
                               r.tracker.unschedulable_count() +
                               r.tracker.abandoned_count();
  std::cout << "jobs: " << r.tracker.submitted_count() << " submitted, "
            << r.completed() << " completed, "
            << r.tracker.unschedulable_count() << " unschedulable, "
            << r.tracker.abandoned_count() << " abandoned, " << r.stranded()
            << " stranded\n";
  std::cout << "injected: " << r.faults.lost << " lost, "
            << r.faults.duplicated << " duplicated, " << r.faults.delayed
            << " delayed, " << r.faults.partition_drops
            << " partition drops\n";
  std::cout << "churn: " << r.faults.crashes << " crashes, "
            << r.faults.restarts << " restarts; failsafe recoveries: "
            << r.tracker.total_recoveries() << "\n";

  bool ok = true;
  if (r.stranded() != 0) {
    std::cout << "FAIL: " << r.stranded() << " jobs stranded\n";
    ok = false;
  }
  if (terminal < r.tracker.submitted_count()) {
    std::cout << "FAIL: terminal states (" << terminal
              << ") < submissions (" << r.tracker.submitted_count() << ")\n";
    ok = false;
  }
  // Reconciliation: every injected drop the plane counted must appear in
  // the network's faulted tally, and every executed duplication must have
  // produced an extra delivery attempt.
  if (r.faulted_messages != r.faults.injected_drops()) {
    std::cout << "FAIL: network faulted " << r.faulted_messages
              << " != plane injected " << r.faults.injected_drops() << "\n";
    ok = false;
  }
  if (r.duplicated_messages != r.faults.duplicated) {
    std::cout << "FAIL: network duplicated " << r.duplicated_messages
              << " != plane duplicated " << r.faults.duplicated << "\n";
    ok = false;
  }
  if (r.faults.crashes < r.faults.restarts) {
    std::cout << "FAIL: more restarts than crashes\n";
    ok = false;
  }
  if (!r.tracker.violations().empty()) {
    std::cout << "FAIL: " << r.tracker.violations().size()
              << " lifecycle violations; first: "
              << r.tracker.violations().front() << "\n";
    ok = false;
  }

  std::cout << (ok ? "\nevery job reached a terminal state and the fault "
                     "books balance\n"
                   : "\nunexpected outcome\n");
  return ok ? 0 : 1;
}
