// Campus grid: a hand-built heterogeneous deployment with two virtual
// organizations and deadline-driven workloads — the scenario the paper's
// introduction motivates (multi-institution sharing with per-VO execution
// constraints and QoS demands).
//
// Physics (vo "physics") owns fast AMD64/Linux batch machines; the
// bioinformatics lab (vo "bio") runs EDF deadline machines. Unconstrained
// jobs may run anywhere their profile matches; VO-tagged jobs must stay
// inside their organization.
//
//   ./campus_grid [seed]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/config.hpp"
#include "core/node.hpp"
#include "core/tracker.hpp"
#include "overlay/bootstrap.hpp"
#include "overlay/flooding.hpp"
#include "sched/policies.hpp"
#include "sim/latency.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

using namespace aria;
using namespace aria::literals;

namespace {

struct Campus {
  explicit Campus(std::uint64_t seed) : rng{seed} {
    net = std::make_unique<sim::Network>(
        sim, std::make_unique<sim::GeoLatencyModel>(), rng.fork(1));
    relay = std::make_unique<overlay::FloodRelay>(topo, rng.fork(2));
    config.accept_timeout = 2_s;
    config.inform_period = 2_min;
    config.reschedule_threshold = 1_min;
  }

  ~Campus() { nodes.clear(); }

  proto::AriaNode& add_machine(const std::string& vo,
                               sched::SchedulerKind kind, double perf,
                               int mem_gb) {
    grid::NodeProfile p;
    p.arch = grid::Architecture::kAmd64;
    p.os = grid::OperatingSystem::kLinux;
    p.memory_gb = mem_gb;
    p.disk_gb = 16;
    p.performance_index = perf;

    proto::NodeContext ctx;
    ctx.sim = &sim;
    ctx.net = net.get();
    ctx.topo = &topo;
    ctx.relay = relay.get();
    ctx.config = &config;
    ctx.ert_error = &ert_error;
    ctx.observer = &tracker;
    const NodeId id{static_cast<std::uint32_t>(nodes.size())};
    topo.add_node(id);
    nodes.push_back(std::make_unique<proto::AriaNode>(
        ctx, id, p, sched::make_scheduler(kind), rng.fork(100 + id.value()),
        vo));
    nodes.back()->start();
    return *nodes.back();
  }

  sim::Simulator sim;
  overlay::Topology topo;
  proto::AriaConfig config;
  grid::ErtErrorModel ert_error{grid::ErtErrorMode::kSymmetric, 0.1};
  proto::JobTracker tracker;
  Rng rng;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<overlay::FloodRelay> relay;
  std::vector<std::unique_ptr<proto::AriaNode>> nodes;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  Campus campus{seed};

  // Physics: 8 fast batch machines. Bio: 6 EDF machines. Plus 6 shared
  // mid-range FCFS boxes with no VO tag requirements on jobs targeting them.
  for (int i = 0; i < 8; ++i) {
    campus.add_machine("physics", sched::SchedulerKind::kSjf, 1.6 + 0.05 * i, 16);
  }
  for (int i = 0; i < 6; ++i) {
    campus.add_machine("bio", sched::SchedulerKind::kEdf, 1.2, 8);
  }
  for (int i = 0; i < 6; ++i) {
    campus.add_machine("shared", sched::SchedulerKind::kFcfs, 1.0, 4);
  }
  // Overlay: ring plus chords across the campus.
  for (std::uint32_t i = 0; i < campus.nodes.size(); ++i) {
    campus.topo.add_link(
        NodeId{i}, NodeId{(i + 1) % static_cast<std::uint32_t>(campus.nodes.size())});
    campus.topo.add_link(
        NodeId{i}, NodeId{(i + 5) % static_cast<std::uint32_t>(campus.nodes.size())});
  }

  // Workload: physics batch sweeps (VO-locked), bio deadline pipelines
  // (VO-locked), and unconstrained student jobs submitted anywhere.
  Rng wl = campus.rng.fork(4);
  auto submit = [&](Duration at, const std::string& vo, Duration ert,
                    std::optional<Duration> deadline) {
    campus.sim.schedule_at(TimePoint::origin() + at, [&, vo, ert, deadline] {
      grid::JobSpec j;
      j.id = JobId::generate(wl);
      j.requirements.arch = grid::Architecture::kAmd64;
      j.requirements.os = grid::OperatingSystem::kLinux;
      j.requirements.min_memory_gb = vo == "physics" ? 8 : 2;
      j.requirements.min_disk_gb = 1;
      j.requirements.virtual_org = vo;  // empty = run anywhere
      j.ert = ert;
      if (deadline) j.deadline = campus.sim.now() + *deadline;
      const auto pick = static_cast<std::size_t>(
          wl.uniform_int(0, static_cast<std::int64_t>(campus.nodes.size()) - 1));
      campus.nodes[pick]->submit(std::move(j));
    });
  };

  for (int i = 0; i < 24; ++i) {
    submit(Duration::seconds(30 * i), "physics", 90_min, std::nullopt);
  }
  for (int i = 0; i < 18; ++i) {
    submit(Duration::seconds(40 * i + 10), "bio", 1_h, 4_h);
  }
  for (int i = 0; i < 20; ++i) {
    submit(Duration::seconds(25 * i + 5), "", 45_min, std::nullopt);
  }

  campus.sim.run_until(TimePoint::origin() + 48_h);

  // Report.
  std::size_t physics = 0, bio = 0, open = 0, vo_violations = 0, missed = 0;
  double mean_wait = 0.0;
  std::size_t done = 0;
  for (const auto& [id, rec] : campus.tracker.records()) {
    if (!rec.done()) continue;
    ++done;
    mean_wait += rec.waiting_time().to_minutes();
    const auto& vo = rec.spec.requirements.virtual_org;
    if (vo == "physics") ++physics;
    else if (vo == "bio") ++bio;
    else ++open;
    if (!vo.empty() &&
        campus.nodes[rec.executor.index()]->virtual_org() != vo) {
      ++vo_violations;
    }
    if (rec.missed_deadline()) ++missed;
  }
  mean_wait = done ? mean_wait / static_cast<double>(done) : 0.0;

  std::cout << "campus grid (" << campus.nodes.size() << " machines, 3 VOs)\n"
            << "completed: " << done << "/62 (physics " << physics << ", bio "
            << bio << ", open " << open << ")\n"
            << "VO placement violations: " << vo_violations << "\n"
            << "missed deadlines (bio pipelines): " << missed << "\n"
            << "mean waiting time: " << mean_wait << " min\n"
            << "dynamic reschedules: " << campus.tracker.total_reschedules()
            << "\n"
            << "tracker violations: " << campus.tracker.violations().size()
            << "\n";
  return (done == 62 && vo_violations == 0 &&
          campus.tracker.violations().empty())
             ? 0
             : 1;
}
