// Trace replay: drives the grid from a workload trace file instead of the
// synthetic generator — the harness for the paper's stated future work of
// evaluating against real grid workload traces. Uses the library's
// `workload::parse_trace` / `workload::to_job_spec` API.
//
// Run without arguments to generate a demo trace, replay it, and print the
// outcome; pass a path to replay your own trace:
//   ./trace_replay [trace_file]

#include <fstream>
#include <iostream>

#include "workload/engine.hpp"
#include "workload/scenario.hpp"
#include "workload/trace.hpp"

using namespace aria;
using namespace aria::literals;

namespace {

std::vector<workload::TraceJob> demo_trace() {
  std::vector<workload::TraceJob> jobs;
  // A burst of AMD64/Linux batch work...
  for (int i = 0; i < 40; ++i) {
    workload::TraceJob t;
    t.submit_offset = Duration::seconds(i * 15);
    t.ert = Duration::minutes(60 + (i * 7) % 120);
    t.requirements.arch = grid::Architecture::kAmd64;
    t.requirements.os = grid::OperatingSystem::kLinux;
    t.requirements.min_memory_gb = 1 << (i % 4);
    t.requirements.min_disk_gb = 2;
    jobs.push_back(t);
  }
  // ...some POWER jobs with deadlines.
  for (int i = 0; i < 8; ++i) {
    workload::TraceJob t;
    t.submit_offset = Duration::seconds(100 + i * 40);
    t.ert = Duration::minutes(90);
    t.requirements.arch = grid::Architecture::kPower;
    t.requirements.os = grid::OperatingSystem::kLinux;
    t.requirements.min_memory_gb = 2;
    t.requirements.min_disk_gb = 1;
    t.deadline_slack = Duration::minutes(240);
    jobs.push_back(t);
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "demo_trace.txt";
  if (argc <= 1) {
    std::ofstream out{path};
    workload::write_trace(out, demo_trace(), "demo grid workload trace");
    out << "not a job line  # malformed on purpose: the parser must skip it\n";
    std::cout << "wrote demo trace to " << path << "\n";
  }

  std::ifstream in{path};
  if (!in) {
    std::cerr << "cannot open trace file: " << path << "\n";
    return 2;
  }
  const workload::TraceParseResult trace = workload::parse_trace(in);
  std::cout << "parsed " << trace.jobs.size() << " jobs ("
            << trace.malformed_lines << " malformed lines skipped)\n";
  if (trace.jobs.empty()) return 2;

  // Build a grid (no synthetic workload) and replay the trace into it.
  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 80;
  cfg.job_count = 0;  // the replay drives all submissions
  cfg.horizon = 48_h;
  // EDF nodes handle any deadline-tagged trace jobs.
  cfg.scheduler_mix = {sched::SchedulerKind::kFcfs, sched::SchedulerKind::kSjf,
                       sched::SchedulerKind::kEdf};
  workload::GridSimulation sim{cfg, 21};
  sim.build();

  Rng rng{2100};
  const auto nodes = sim.all_nodes();
  for (const workload::TraceJob& t : trace.jobs) {
    sim.simulator().schedule_at(
        TimePoint::origin() + t.submit_offset, [&sim, &rng, &nodes, t] {
          grid::JobSpec j =
              workload::to_job_spec(t, sim.simulator().now(), rng);
          const auto pick = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(nodes.size()) - 1));
          nodes[pick]->submit(std::move(j));
        });
  }
  sim.simulator().run_until(TimePoint::origin() + cfg.horizon);

  const auto& tracker = sim.tracker();
  double mean_completion = 0.0;
  std::size_t done = 0, missed = 0;
  for (const auto& [id, rec] : tracker.records()) {
    if (!rec.done()) continue;
    ++done;
    mean_completion += rec.completion_time().to_minutes();
    if (rec.missed_deadline()) ++missed;
  }
  if (done > 0) mean_completion /= static_cast<double>(done);

  std::cout << "replayed on " << cfg.node_count << " nodes: " << done << "/"
            << trace.jobs.size() << " jobs completed, mean completion "
            << mean_completion << " min, " << missed << " missed deadlines, "
            << tracker.total_reschedules() << " reschedules, "
            << tracker.unschedulable_count() << " unschedulable\n";
  std::cout << "tracker violations: " << tracker.violations().size() << "\n";
  return tracker.violations().empty() && done == trace.jobs.size() ? 0 : 1;
}
