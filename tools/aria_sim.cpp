// aria_sim: command-line runner for the paper's evaluation scenarios.
//
//   aria_sim --list
//   aria_sim --scenario iMixed --runs 3 --seed 7
//   aria_sim --scenario HighLoad --resched --nodes 200 --jobs 400 --csv out/

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>

#include "metrics/report.hpp"
#include "trace/critical_path.hpp"
#include "trace/export.hpp"
#include "workload/aggregate.hpp"
#include "workload/cli.hpp"
#include "workload/engine.hpp"

int main(int argc, char** argv) {
  using namespace aria;

  std::vector<std::string> args{argv + 1, argv + argc};
  workload::CliOptions options;
  if (const auto error = workload::parse_cli(args, options)) {
    std::cerr << "error: " << *error << "\n\n" << workload::cli_usage();
    return 2;
  }
  if (options.show_help) {
    std::cout << workload::cli_usage();
    return 0;
  }
  if (options.list_scenarios) {
    metrics::Table table{{"name", "description"}};
    for (const auto& s : workload::all_scenarios()) {
      table.add_row({s.name, s.description});
    }
    table.print(std::cout);
    return 0;
  }

  workload::ScenarioConfig cfg;
  try {
    cfg = workload::resolve_scenario(options);
  } catch (const std::out_of_range& e) {
    std::cerr << "error: " << e.what() << " (use --list)\n";
    return 2;
  }

  // Determinism-contract mode (docs/pdes.md): run every seed twice —
  // sequential oracle, then sharded — and diff the full results. Exits
  // nonzero naming the first divergent event on any mismatch.
  if (options.pdes_verify) {
    if (cfg.shards < 2) {
      std::cerr << "error: --pdes-verify needs --shards N with N >= 2\n";
      return 2;
    }
    int exit_code = 0;
    for (std::size_t i = 0; i < options.runs; ++i) {
      const std::uint64_t seed = options.seed + i;
      workload::PdesEquivalence eq;
      try {
        eq = workload::verify_sharded_equivalence(cfg, cfg.shards, seed);
      } catch (const std::invalid_argument& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }
      std::cout << "pdes-verify " << cfg.name << " seed " << seed
                << " shards " << cfg.shards << ": "
                << (eq.identical ? "IDENTICAL" : "DIVERGED") << "\n";
      if (!eq.identical) {
        std::cout << "  " << eq.detail << "\n";
        exit_code = 1;
      } else if (!options.quiet) {
        std::cout << "  " << eq.detail << "\n";
      }
    }
    return exit_code;
  }

  if (!options.quiet) {
    std::cout << "scenario " << cfg.name << ": " << cfg.node_count
              << " nodes, " << cfg.job_count << " jobs, rescheduling "
              << (cfg.aria.dynamic_rescheduling ? "on" : "off") << ", "
              << options.runs << " run(s), base seed " << options.seed
              << "\n";
  }

  std::vector<workload::RunResult> results;
  try {
    results = workload::run_scenario_repeated(cfg, options.runs, options.seed);
  } catch (const std::invalid_argument& e) {
    // Sharded execution rejects planes the executor cannot host.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const auto summary = workload::summarize(cfg, results);

  metrics::Table table{{"metric", "mean", "stddev", "min", "max"}};
  auto row = [&](const std::string& name, const RunningStats& s,
                 int precision = 1) {
    table.add_row({name, metrics::Table::num(s.mean(), precision),
                   metrics::Table::num(s.stddev(), precision),
                   metrics::Table::num(s.min(), precision),
                   metrics::Table::num(s.max(), precision)});
  };
  row("completed jobs", summary.completed_jobs, 0);
  row("completion [min]", summary.completion_minutes);
  row("waiting [min]", summary.waiting_minutes);
  row("execution [min]", summary.execution_minutes);
  row("reschedules", summary.reschedules, 0);
  if (cfg.deadline_scenario()) {
    row("missed deadlines", summary.missed_deadlines);
    row("met slack [min]", summary.met_slack_minutes);
    row("missed time [min]", summary.missed_time_minutes);
  }
  row("overlay avg path length", summary.overlay_avg_path_length, 2);
  row("overlay avg degree", summary.overlay_avg_degree, 2);
  RunningStats gini;
  for (const auto& r : results) gini.add(r.busy_time_balance().gini);
  row("busy-time Gini", gini, 3);
  table.print(std::cout);

  std::cout << "\ntraffic (mean per run):\n";
  for (const auto& [type, entry] : summary.traffic.by_type()) {
    std::cout << "  " << type << ": "
              << metrics::Table::num(summary.traffic_mib_mean(type), 2)
              << " MiB\n";
  }

  // Jobs with no terminal state feed the exit code whenever a robustness
  // plane ran: under faults, overload, *and* hierarchical discovery the
  // protocol promises every submitted job still terminates.
  std::size_t stranded = 0;
  if (cfg.faults.enabled || cfg.aria.overload.enabled ||
      cfg.aria.hierarchy.enabled) {
    for (const auto& r : results) stranded += r.stranded();
  }

  // Printed only when the fault plane ran, so fault-free output stays
  // byte-identical to historical runs.
  if (cfg.faults.enabled) {
    std::uint64_t lost = 0, duplicated = 0, delayed = 0, partition_drops = 0;
    std::uint64_t crashes = 0, restarts = 0, recoveries = 0, dropped = 0;
    std::size_t abandoned = 0;
    for (const auto& r : results) {
      lost += r.faults.lost;
      duplicated += r.faults.duplicated;
      delayed += r.faults.delayed;
      partition_drops += r.faults.partition_drops;
      crashes += r.faults.crashes;
      restarts += r.faults.restarts;
      recoveries += r.tracker.total_recoveries();
      abandoned += r.tracker.abandoned_count();
      dropped += r.submissions_dropped;
    }
    std::cout << "\nfault injection (totals over " << results.size()
              << " run(s)):\n"
              << "  messages lost: " << lost << ", duplicated: " << duplicated
              << ", delayed: " << delayed
              << ", partition drops: " << partition_drops << "\n"
              << "  node crashes: " << crashes << ", restarts: " << restarts
              << "\n"
              << "  failsafe recoveries: " << recoveries
              << ", jobs abandoned: " << abandoned
              << ", submissions dropped: " << dropped
              << ", jobs stranded: " << stranded << "\n";
  }

  // Printed only when the healing plane ran (same byte-identity contract as
  // the fault block above).
  if (cfg.aria.healing.enabled) {
    std::uint64_t evictions = 0, false_susp = 0, repairs = 0, rejoins = 0;
    std::uint64_t rounds = 0, disconnected = 0;
    double max_heal = 0.0, probe_mib = 0.0;
    bool end_connected = true;
    for (const auto& r : results) {
      evictions += r.neighbor_evictions;
      false_susp += r.false_suspicions;
      repairs += r.repair_links;
      rejoins += r.rejoin_requests;
      rounds += r.probe_rounds;
      disconnected += r.live_disconnected_samples;
      max_heal = std::max(max_heal, r.max_heal_minutes);
      probe_mib += r.probe_traffic_mib();
      end_connected = end_connected && r.live_subgraph_connected_at_end;
    }
    std::cout << "\noverlay health (totals over " << results.size()
              << " run(s)):\n"
              << "  evictions: " << evictions
              << ", false suspicions: " << false_susp
              << ", repair links: " << repairs
              << ", rejoin requests: " << rejoins << "\n"
              << "  probe rounds: " << rounds << ", probe traffic: "
              << metrics::Table::num(probe_mib, 2) << " MiB\n"
              << "  live subgraph disconnected samples: " << disconnected
              << ", worst heal window: "
              << metrics::Table::num(max_heal, 1) << " min"
              << ", connected at end: " << (end_connected ? "yes" : "NO")
              << "\n";
  }

  // Printed only when the overload plane ran (same byte-identity contract).
  if (cfg.aria.overload.enabled) {
    std::uint64_t shed = 0, shed_resched = 0, shed_failsafe = 0;
    std::uint64_t rejects = 0, rediscoveries = 0, suppressed = 0;
    std::uint64_t peak_depth = 0;
    std::size_t rejected_incomplete = 0;
    for (const auto& r : results) {
      shed += r.jobs_shed;
      shed_resched += r.sheds_rescheduled;
      shed_failsafe += r.sheds_failsafe;
      rejects += r.assign_rejects;
      rediscoveries += r.reject_rediscoveries;
      suppressed += r.bids_suppressed;
      peak_depth = std::max(peak_depth, r.peak_queue_depth);
      rejected_incomplete += r.tracker.rejected_incomplete_count();
    }
    std::cout << "\noverload (totals over " << results.size() << " run(s)):\n"
              << "  jobs shed: " << shed << " (re-placed via INFORM: "
              << shed_resched << ", via re-flood: " << shed_failsafe << ")\n"
              << "  ASSIGN rejects: " << rejects
              << ", re-discoveries: " << rediscoveries
              << ", bids suppressed: " << suppressed << "\n"
              << "  peak queue depth: " << peak_depth
              << ", rejected jobs left incomplete: " << rejected_incomplete
              << ", jobs stranded: " << stranded << "\n";
  }

  // Printed only when the hierarchy plane ran (same byte-identity contract).
  if (cfg.aria.hierarchy.enabled && !results.empty()) {
    std::uint64_t queries = 0, served = 0, forwards = 0, floods = 0;
    std::uint64_t wide = 0, reports = 0, digests = 0;
    std::uint64_t intra_msgs = 0, cross_msgs = 0;
    std::uint64_t intra_bytes = 0, cross_bytes = 0;
    double region_mib = 0.0;
    for (const auto& r : results) {
      queries += r.region_queries;
      served += r.region_queries_served;
      forwards += r.region_forwards;
      floods += r.region_floods;
      wide += r.wide_floods;
      reports += r.load_reports;
      digests += r.digests_sent;
      intra_msgs += r.intra_region_messages;
      cross_msgs += r.cross_region_messages;
      intra_bytes += r.intra_region_bytes;
      cross_bytes += r.cross_region_bytes;
      region_mib += r.region_traffic_mib();
    }
    const double mib = 1024.0 * 1024.0;
    std::cout << "\nhierarchy (totals over " << results.size() << " run(s), "
              << results.front().region_count << " regions):\n"
              << "  region queries: " << queries << " sent, " << served
              << " served, " << forwards << " forwarded, " << floods
              << " remote floods, " << wide << " wide floods\n"
              << "  load reports: " << reports
              << ", digests broadcast: " << digests
              << ", region-plane traffic: "
              << metrics::Table::num(region_mib, 2) << " MiB\n"
              << "  intra-region wire: " << intra_msgs << " msgs / "
              << metrics::Table::num(static_cast<double>(intra_bytes) / mib, 2)
              << " MiB; cross-region: " << cross_msgs << " msgs / "
              << metrics::Table::num(static_cast<double>(cross_bytes) / mib, 2)
              << " MiB\n"
              << "  jobs stranded: " << stranded << "\n";
    if (cfg.faults.enabled) {
      // Chaos-hardening telemetry; gated on the fault plane so fault-free
      // hierarchy output stays byte-identical to historical runs.
      std::uint64_t pulls = 0, handoffs = 0, escalations = 0;
      std::uint64_t targeted = 0;
      for (const auto& r : results) {
        pulls += r.region_pulls;
        handoffs += r.region_handoffs;
        escalations += r.early_wide_escalations;
        targeted += r.faults.targeted_crashes;
      }
      std::cout << "  targeted crashes: " << targeted
                << ", cold-restart pulls: " << pulls
                << ", query handoffs: " << handoffs
                << ", early wide escalations: " << escalations << "\n";
    }
  }

  // Printed only when adversaries were designated (same byte-identity
  // contract: honest runs never reach this block).
  if (!results.empty() && results.front().adversaries_enabled) {
    std::size_t cast = 0;
    std::uint64_t underbids = 0, deflated = 0, swallowed = 0, poisoned = 0;
    for (const auto& r : results) {
      cast += r.adversary_count;
      underbids += r.adv_underbids;
      deflated += r.adv_informs_deflated;
      swallowed += r.adv_assigns_swallowed;
      poisoned += r.adv_digests_poisoned;
    }
    std::cout << "\nadversaries (totals over " << results.size()
              << " run(s), " << cast << " designated):\n"
              << "  bids underquoted: " << underbids
              << ", INFORMs deflated: " << deflated
              << ", ASSIGNs swallowed: " << swallowed
              << ", digests poisoned: " << poisoned
              << ", jobs stranded: " << stranded << "\n";
  }

  // Printed only when the defense plane ran (same byte-identity contract).
  if (cfg.aria.defense.enabled) {
    std::uint64_t distrusted = 0, stragglers = 0, revokes = 0, acks = 0;
    std::uint64_t hedges = 0, clamped = 0, evicted = 0;
    for (const auto& r : results) {
      distrusted += r.offers_distrusted;
      stragglers += r.stragglers_detected;
      revokes += r.revokes_sent;
      acks += r.revoke_acks_sent;
      hedges += r.hedges_dispatched;
      clamped += r.digests_clamped;
      evicted += r.reputation_evictions;
    }
    std::cout << "\ndefenses (totals over " << results.size() << " run(s)):\n"
              << "  offers distrusted: " << distrusted
              << ", reputation evictions: " << evicted << "\n"
              << "  stragglers detected: " << stragglers << ", revokes sent: "
              << revokes << ", surrendered: " << acks
              << ", hedges dispatched: " << hedges << "\n"
              << "  digests clamped: " << clamped
              << ", jobs stranded: " << stranded << "\n";
  }

  // Printed only on sharded runs (same byte-identity contract: shards == 1
  // output matches the sequential kernel byte for byte).
  if (cfg.shards > 1) {
    std::uint64_t windows = 0, engine_phases = 0, engine_events = 0;
    std::uint64_t shard_events = 0, forwarded = 0, overflows = 0;
    for (const auto& r : results) {
      windows += r.pdes_windows;
      engine_phases += r.pdes_engine_phases;
      engine_events += r.pdes_engine_events;
      shard_events += r.pdes_shard_events;
      forwarded += r.pdes_messages_forwarded;
      overflows += r.pdes_channel_overflows;
    }
    const double total_events =
        static_cast<double>(engine_events + shard_events);
    std::cout << "\nsharded execution (totals over " << results.size()
              << " run(s), " << cfg.shards << " shards):\n"
              << "  windows: " << windows
              << ", engine phases: " << engine_phases << "\n"
              << "  events in shards: " << shard_events
              << ", in engine phases: " << engine_events << " ("
              << metrics::Table::num(
                     total_events > 0.0
                         ? 100.0 * static_cast<double>(shard_events) /
                               total_events
                         : 0.0,
                     1)
              << "% parallelizable)\n"
              << "  cross-shard messages: " << forwarded
              << ", channel overflows: " << overflows << "\n";
  }

  // Printed only when the tracing plane ran (same byte-identity contract):
  // the per-job critical-path summary from the first run's trace.
  if (cfg.trace.enabled && !results.empty() && results.front().trace) {
    const auto& buf = *results.front().trace;
    const auto paths = trace::critical_paths(buf);
    const auto agg = trace::aggregate(paths);
    std::cout << "\ntrace critical path (first run, " << agg.jobs
              << " traced jobs: " << agg.completed << " completed, "
              << agg.unschedulable << " unschedulable, " << agg.abandoned
              << " abandoned, " << agg.open << " open at horizon):\n";
    metrics::Table cp{{"metric", "mean", "stddev", "min", "max", "jobs"}};
    auto cp_row = [&](const std::string& name, const RunningStats& s,
                      int precision) {
      cp.add_row({name, metrics::Table::num(s.mean(), precision),
                  metrics::Table::num(s.stddev(), precision),
                  metrics::Table::num(s.min(), precision),
                  metrics::Table::num(s.max(), precision),
                  std::to_string(s.count())});
    };
    cp_row("time to first bid [s]", agg.time_to_first_bid_s, 3);
    cp_row("bids per job", agg.bids, 1);
    cp_row("delegation latency [s]", agg.delegation_latency_s, 3);
    cp_row("queue wait [s]", agg.queue_wait_s, 1);
    cp_row("reschedules", agg.reschedules, 2);
    cp_row("makespan [s]", agg.makespan_s, 1);
    cp.print(std::cout);
    std::cout << "  records: " << buf.total_recorded() << " collected, "
              << buf.dropped_job_events() << " job + "
              << buf.dropped_message_events()
              << " message records dropped at ring capacity\n";
  }

  // Printed only when the auditor ran (same byte-identity contract).
  std::uint64_t audit_violations = 0;
  if (cfg.audit.enabled) {
    std::map<std::string, std::uint64_t> by_kind;
    for (const auto& r : results) {
      audit_violations += r.audit_violations;
      for (const auto& [kind, n] : r.audit_by_kind) by_kind[kind] += n;
    }
    std::cout << "\ninvariant audit (totals over " << results.size()
              << " run(s)): " << audit_violations << " violation(s)\n";
    for (const auto& [kind, n] : by_kind) {
      std::cout << "  " << kind << ": " << n << "\n";
    }
    for (const auto& r : results) {
      for (const auto& v : r.violations) {
        std::cout << "  [" << v.kind << "] " << v.detail << "\n";
      }
    }
  }

  bool violations = false;
  for (const auto& r : results) {
    if (!r.tracker.violations().empty()) violations = true;
  }
  std::cout << "lifecycle violations: " << (violations ? "YES" : "none")
            << "\n";

  if (!options.csv_dir.empty()) {
    std::filesystem::create_directories(options.csv_dir);
    const auto base = std::filesystem::path{options.csv_dir};
    {
      std::ofstream out{base / (cfg.name + "_idle.csv")};
      metrics::write_series_csv(out, {summary.idle_series});
    }
    {
      std::ofstream out{base / (cfg.name + "_completed.csv")};
      metrics::write_series_csv(out, {summary.completed_curve});
    }
    {
      std::ofstream out{base / (cfg.name + "_nodes.csv")};
      metrics::write_series_csv(out, {summary.node_count_series});
    }
    if (cfg.aria.overload.enabled) {
      std::ofstream out{base / (cfg.name + "_overload.csv")};
      metrics::write_series_csv(out,
                                {summary.queue_depth_series,
                                 summary.shed_series, summary.reject_series});
    }
    std::cout << "CSV series written to " << options.csv_dir << "\n";
  }

  if (options.tracing() && !results.empty() && results.front().trace) {
    const auto& buf = *results.front().trace;
    if (!options.trace_path.empty()) {
      std::ofstream out{options.trace_path};
      if (!out) {
        std::cerr << "error: cannot write " << options.trace_path << "\n";
        return 2;
      }
      trace::export_chrome(buf, out);
      std::cout << "Chrome trace written to " << options.trace_path
                << " (load at ui.perfetto.dev)\n";
    }
    if (!options.trace_jsonl_path.empty()) {
      std::ofstream out{options.trace_jsonl_path};
      if (!out) {
        std::cerr << "error: cannot write " << options.trace_jsonl_path << "\n";
        return 2;
      }
      trace::export_jsonl(buf, out);
      std::cout << "JSONL trace written to " << options.trace_jsonl_path
                << "\n";
    }
  }
  return (violations || stranded != 0 || audit_violations != 0) ? 1 : 0;
}
