#!/bin/sh
# Checks that every intra-repo markdown link resolves to a real file.
#
# Scans all tracked *.md files for inline links [text](target) and flags
# targets that are relative paths (not http(s)/mailto, not pure #anchors)
# pointing at files that do not exist. Anchors on existing files are
# accepted without heading validation — this catches moved/renamed files,
# the failure mode docs actually suffer.
#
# Usage: tools/check_docs_links.sh [root]
set -u

root=${1:-.}
cd "$root" || exit 2

if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  files=$(git ls-files '*.md')
else
  files=$(find . -name '*.md' -not -path './build*/*' | sed 's|^\./||')
fi

status=0
for f in $files; do
  dir=$(dirname "$f")
  # Pull out every (…) target of an inline markdown link. One link per
  # line keeps the loop simple; grep -o isolates the parenthesized part.
  targets=$(grep -o '](\([^)]*\))' "$f" 2>/dev/null \
            | sed 's/^](//; s/)$//')
  [ -n "$targets" ] || continue
  for t in $targets; do
    case $t in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${t%%#*}             # strip any anchor
    [ -n "$path" ] || continue
    case $path in
      /*) resolved=".$path" ;;          # repo-absolute
      *)  resolved="$dir/$path" ;;      # relative to the linking file
    esac
    if [ ! -e "$resolved" ]; then
      echo "$f: broken link -> $t"
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "all intra-repo markdown links resolve"
fi
exit $status
