#!/bin/sh
# Checks that every intra-repo markdown link resolves to a real file, and
# that every #anchor fragment resolves to a real heading.
#
# Scans all tracked *.md files for inline links [text](target) and flags
# (a) relative-path targets (not http(s)/mailto) pointing at files that do
# not exist — the moved/renamed-file failure mode — and (b) anchors, both
# same-file (#section) and cross-file (doc.md#section), that match no
# heading in the target file under GitHub's slug rules (lowercase, drop
# punctuation, spaces to hyphens).
#
# Usage: tools/check_docs_links.sh [root]
set -u

root=${1:-.}
cd "$root" || exit 2

# GitHub-style slugs of every markdown heading in $1, one per line:
# strip the #-prefix and inline-code backticks, lowercase, drop everything
# but alphanumerics/spaces/hyphens/underscores, then spaces -> hyphens.
slugs_of() {
  grep -E '^#{1,6} ' "$1" 2>/dev/null \
    | sed -E 's/^#{1,6} +//; s/`//g; s/ +$//' \
    | tr '[:upper:]' '[:lower:]' \
    | sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}

if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  files=$(git ls-files '*.md')
else
  files=$(find . -name '*.md' -not -path './build*/*' | sed 's|^\./||')
fi

status=0
for f in $files; do
  dir=$(dirname "$f")
  # Pull out every (…) target of an inline markdown link. One link per
  # line keeps the loop simple; grep -o isolates the parenthesized part.
  targets=$(grep -o '](\([^)]*\))' "$f" 2>/dev/null \
            | sed 's/^](//; s/)$//')
  [ -n "$targets" ] || continue
  for t in $targets; do
    case $t in
      http://*|https://*|mailto:*) continue ;;
    esac
    anchor=''
    case $t in
      *#*) anchor=${t#*#} ;;
    esac
    path=${t%%#*}             # file part; empty for same-file anchors
    if [ -z "$path" ]; then
      resolved=$f
    else
      case $path in
        /*) resolved=".$path" ;;          # repo-absolute
        *)  resolved="$dir/$path" ;;      # relative to the linking file
      esac
      if [ ! -e "$resolved" ]; then
        echo "$f: broken link -> $t"
        status=1
        continue
      fi
    fi
    [ -n "$anchor" ] || continue
    case $resolved in
      *.md) ;;
      *) continue ;;          # anchors into non-markdown are out of scope
    esac
    # Accept GitHub's -N suffix for duplicate headings.
    base=$(printf '%s' "$anchor" | sed -E 's/-[0-9]+$//')
    if ! slugs_of "$resolved" | grep -qx -e "$anchor" -e "$base"; then
      echo "$f: broken anchor -> $t"
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "all intra-repo markdown links resolve"
fi
exit $status
