#!/usr/bin/env python3
"""Validates an aria_sim --trace Chrome trace_event file.

Checks the invariants the exporter promises (docs/tracing.md):
  * the file is valid JSON with a traceEvents array;
  * duration events balance: equal B and E counts, and per-tid nesting
    never closes an empty stack;
  * async job spans balance: every b has an e with the same id;
  * flow ends never outnumber flow starts per category;
  * timestamps are non-negative integers, sorted non-decreasing.

Usage: check_chrome_trace.py TRACE.json
Exit 0 if well-formed, 1 with a message otherwise.
"""
import json
import sys
from collections import Counter, defaultdict


def fail(msg):
    print(f"check_chrome_trace: FAIL: {msg}")
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    with open(sys.argv[1], encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"not valid JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("no traceEvents array")

    phases = Counter()
    depth = defaultdict(int)          # per-tid B/E nesting
    async_open = Counter()            # per-id b/e balance
    flows = defaultdict(lambda: [0, 0])  # per-cat [starts, ends]
    last_ts = None
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None:
            fail(f"event {i} has no ph")
        phases[ph] += 1
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, int) or ts < 0:
            fail(f"event {i} has bad ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"event {i} goes back in time ({ts} < {last_ts})")
        last_ts = ts
        if ph == "B":
            depth[ev.get("tid")] += 1
        elif ph == "E":
            tid = ev.get("tid")
            if depth[tid] == 0:
                fail(f"event {i}: E with no open B on tid {tid}")
            depth[tid] -= 1
        elif ph == "b":
            async_open[ev.get("id")] += 1
        elif ph == "e":
            aid = ev.get("id")
            if async_open[aid] == 0:
                fail(f"event {i}: async e with no open b for id {aid}")
            async_open[aid] -= 1
        elif ph == "s":
            flows[ev.get("cat")][0] += 1
        elif ph == "f":
            flows[ev.get("cat")][1] += 1

    if phases["B"] != phases["E"]:
        fail(f"unbalanced durations: {phases['B']} B vs {phases['E']} E")
    open_tids = {t: d for t, d in depth.items() if d != 0}
    if open_tids:
        fail(f"unclosed B spans on tids {open_tids}")
    open_async = {a: n for a, n in async_open.items() if n != 0}
    if open_async:
        fail(f"unclosed async spans: {len(open_async)}")
    for cat, (starts, ends) in flows.items():
        if ends > starts:
            fail(f"flow category {cat!r}: {ends} ends but {starts} starts")

    print(
        f"check_chrome_trace: OK: {len(events)} events "
        f"({phases['B']} exec spans, {phases['b']} job spans, "
        f"{sum(s for s, _ in flows.values())} flow arrows)"
    )


if __name__ == "__main__":
    main()
