#!/usr/bin/env sh
# The standing per-PR bench gate (ROADMAP item 5): kernel micros + a pinned
# parallel-sweep preset.
#
#   ./tools/bench_all.sh [options]
#
#   --build-dir DIR     build tree with bench + tools binaries (default: build)
#   --out DIR           output directory (default: bench-out)
#   --preset NAME       aria_sweep preset to scale (default: table2-smoke)
#   --seeds N           seeds per preset row (default: 2)
#   --workers-list "W.."  worker counts for the scaling curve (default: "1 2 4 8")
#   --repetitions N     micro-bench repetitions (default: 3)
#   --baseline FILE     previous BENCH_sweep_scaling.json; gate wall-clock
#                       against it
#   --max-regress PCT   fail when current wall exceeds baseline by more than
#                       PCT percent (default: 10)
#   --note TEXT         free-form annotation recorded in the scaling JSON
#                       (e.g. capture-machine caveats)
#   --skip-micro        skip the kernel micro benches
#   --skip-pdes         skip the sharded-execution scaling curve
#   --shards-list "S.."  shard counts for the PDES curve (default: "1 2 4 8")
#   --pdes-nodes N      grid size for the PDES curve (default: 2000)
#   --pdes-jobs N       job count for the PDES curve (default: 400)
#   --quick             CI smoke profile: quick preset, 1 seed, workers "1 2",
#                       1 repetition, shards "1 2" on a 200-node grid
#   --gate-only CURRENT BASELINE
#                       run only the regression check between two scaling JSONs
#
# Emits $OUT/BENCH_sim_kernel.json (google-benchmark medians),
# $OUT/BENCH_sweep_scaling.json (the 1/2/4/..-worker wall-clock curve) and
# $OUT/BENCH_pdes_scaling.json (one simulation at --shards 1/2/4/..,
# docs/pdes.md "What bounds the speedup"). Independently of timing, the
# merged sweep reports of every worker count are byte-compared — a
# worker-count-dependent report fails the gate even when it is fast — and
# every sharded run must exit 0 (stranded jobs or lifecycle violations fail
# the curve). See docs/sweep.md.
set -eu

BUILD_DIR="build"
OUT="bench-out"
PRESET="table2-smoke"
SEEDS=2
WORKERS_LIST="1 2 4 8"
REPETITIONS=3
BASELINE=""
MAX_REGRESS=10
NOTE=""
SKIP_MICRO=0
SKIP_PDES=0
SHARDS_LIST="1 2 4 8"
PDES_NODES=2000
PDES_JOBS=400
GATE_CURRENT=""
GATE_BASELINE=""

while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    --preset) PRESET="$2"; shift 2 ;;
    --seeds) SEEDS="$2"; shift 2 ;;
    --workers-list) WORKERS_LIST="$2"; shift 2 ;;
    --repetitions) REPETITIONS="$2"; shift 2 ;;
    --baseline) BASELINE="$2"; shift 2 ;;
    --max-regress) MAX_REGRESS="$2"; shift 2 ;;
    --note) NOTE="$2"; shift 2 ;;
    --skip-micro) SKIP_MICRO=1; shift ;;
    --skip-pdes) SKIP_PDES=1; shift ;;
    --shards-list) SHARDS_LIST="$2"; shift 2 ;;
    --pdes-nodes) PDES_NODES="$2"; shift 2 ;;
    --pdes-jobs) PDES_JOBS="$2"; shift 2 ;;
    --quick)
      PRESET="quick"; SEEDS=1; WORKERS_LIST="1 2"; REPETITIONS=1
      SHARDS_LIST="1 2"; PDES_NODES=200; PDES_JOBS=60; shift ;;
    --gate-only)
      [ $# -ge 3 ] || { echo "error: --gate-only CURRENT BASELINE" >&2; exit 2; }
      GATE_CURRENT="$2"; GATE_BASELINE="$3"; shift 3 ;;
    *) echo "error: unknown option $1" >&2; exit 2 ;;
  esac
done

gate() {
  # gate CURRENT BASELINE MAX_REGRESS_PCT: compare wall-clock per worker count.
  python3 - "$1" "$2" "$3" <<'EOF'
import json, sys
current = json.load(open(sys.argv[1]))
baseline = json.load(open(sys.argv[2]))
limit = float(sys.argv[3])
base_by_workers = {e["workers"]: e for e in baseline["workers"]}
failed = False
for entry in current["workers"]:
    base = base_by_workers.get(entry["workers"])
    if base is None:
        continue
    regress = 100.0 * (entry["wall_ms"] - base["wall_ms"]) / base["wall_ms"]
    verdict = "FAIL" if regress > limit else "ok"
    if regress > limit:
        failed = True
    print(f"  gate[{entry['workers']}w]: {base['wall_ms']} -> "
          f"{entry['wall_ms']} ms ({regress:+.1f}%, limit +{limit:.0f}%) {verdict}")
print("bench gate:", "FAILED" if failed else "passed")
sys.exit(1 if failed else 0)
EOF
}

if [ -n "$GATE_CURRENT" ]; then
  gate "$GATE_CURRENT" "$GATE_BASELINE" "$MAX_REGRESS"
  exit $?
fi

SWEEP="$BUILD_DIR/tools/aria_sweep"
if [ ! -x "$SWEEP" ]; then
  echo "error: $SWEEP not found -- build the tools first" >&2
  exit 1
fi

mkdir -p "$OUT"

if [ "$SKIP_MICRO" -eq 0 ]; then
  "$(dirname "$0")/bench_sim_kernel.sh" "$BUILD_DIR" \
    "$OUT/BENCH_sim_kernel.json" --repetitions "$REPETITIONS"
fi

echo "== sweep scaling: preset $PRESET, $SEEDS seed(s), workers: $WORKERS_LIST =="
TIMINGS=""
FIRST_DIR=""
for W in $WORKERS_LIST; do
  DIR="$OUT/sweep-w$W"
  rm -rf "$DIR"
  start=$(date +%s%N)
  "$SWEEP" --preset "$PRESET" --seeds "$SEEDS" --workers "$W" \
    --out "$DIR" --quiet 2>/dev/null
  end=$(date +%s%N)
  ms=$(( (end - start) / 1000000 ))
  echo "  $W worker(s): $ms ms"
  TIMINGS="$TIMINGS $W:$ms"
  if [ -z "$FIRST_DIR" ]; then
    FIRST_DIR="$DIR"
  else
    # Determinism gate: merged reports must not depend on the worker count.
    for f in summary.json summary.csv runs.csv; do
      cmp -s "$FIRST_DIR/$f" "$DIR/$f" || {
        echo "error: $DIR/$f differs from $FIRST_DIR/$f -- merged reports" \
             "must be byte-identical for every worker count" >&2
        exit 1
      }
    done
  fi
done
echo "  merged reports byte-identical across worker counts: OK"

RUNS=$(( $(wc -l < "$FIRST_DIR/runs.csv") - 1 ))
ARIA_BENCH_NOTE="$NOTE" \
python3 - "$OUT/BENCH_sweep_scaling.json" "$PRESET" "$SEEDS" "$RUNS" $TIMINGS <<'EOF'
import datetime, json, os, sys
out, preset, seeds, runs = sys.argv[1:5]
entries = []
for pair in sys.argv[5:]:
    workers, ms = pair.split(":")
    entries.append({"workers": int(workers), "wall_ms": int(ms)})
base = entries[0]["wall_ms"]
for e in entries:
    e["speedup_vs_1w"] = round(base / e["wall_ms"], 2) if e["wall_ms"] else None
cpu = ""
try:
    for line in open("/proc/cpuinfo"):
        if line.startswith("model name"):
            cpu = line.split(":", 1)[1].strip()
            break
except OSError:
    pass
doc = {
    "schema": "aria-sweep-scaling-v1",
    "captured_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "machine": {"cpus": os.cpu_count(), "cpu_model": cpu},
    "preset": preset,
    "seeds": int(seeds),
    "runs": int(runs),
    "workers": entries,
}
note = os.environ.get("ARIA_BENCH_NOTE", "")
if note:
    doc["note"] = note
json.dump(doc, open(out, "w"), indent=2)
open(out, "a").write("\n")
print(f"scaling curve written to {out}")
EOF

if [ "$SKIP_PDES" -eq 0 ]; then
  ARIA_SIM="$BUILD_DIR/tools/aria_sim"
  if [ ! -x "$ARIA_SIM" ]; then
    echo "error: $ARIA_SIM not found -- build the tools first" >&2
    exit 1
  fi
  echo "== pdes shard scaling: $PDES_NODES nodes / $PDES_JOBS jobs," \
       "--hierarchy, shards: $SHARDS_LIST =="
  PDES_TIMINGS=""
  for S in $SHARDS_LIST; do
    start=$(date +%s%N)
    # Exit code is a correctness gate: a stranded job or lifecycle violation
    # under sharding fails the bench even when it is fast.
    "$ARIA_SIM" --scenario iMixed --nodes "$PDES_NODES" --jobs "$PDES_JOBS" \
      --horizon 960 --hierarchy --shards "$S" --seed 1 --quiet
    end=$(date +%s%N)
    ms=$(( (end - start) / 1000000 ))
    echo "  $S shard(s): $ms ms"
    PDES_TIMINGS="$PDES_TIMINGS $S:$ms"
  done

  ARIA_BENCH_NOTE="$NOTE" \
  python3 - "$OUT/BENCH_pdes_scaling.json" "$PDES_NODES" "$PDES_JOBS" \
      $PDES_TIMINGS <<'EOF'
import datetime, json, os, sys
out, nodes, jobs = sys.argv[1:4]
entries = []
for pair in sys.argv[4:]:
    shards, ms = pair.split(":")
    entries.append({"shards": int(shards), "wall_ms": int(ms)})
base = entries[0]["wall_ms"]
for e in entries:
    e["speedup_vs_1s"] = round(base / e["wall_ms"], 2) if e["wall_ms"] else None
cpu = ""
try:
    for line in open("/proc/cpuinfo"):
        if line.startswith("model name"):
            cpu = line.split(":", 1)[1].strip()
            break
except OSError:
    pass
doc = {
    "schema": "aria-pdes-scaling-v1",
    "captured_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "machine": {"cpus": os.cpu_count(), "cpu_model": cpu},
    "scenario": "iMixed --hierarchy",
    "nodes": int(nodes),
    "jobs": int(jobs),
    "shards": entries,
}
note = os.environ.get("ARIA_BENCH_NOTE", "")
if note:
    doc["note"] = note
json.dump(doc, open(out, "w"), indent=2)
open(out, "a").write("\n")
print(f"pdes scaling curve written to {out}")
EOF
fi

if [ -n "$BASELINE" ]; then
  echo "== regression gate vs $BASELINE (max +$MAX_REGRESS%) =="
  gate "$OUT/BENCH_sweep_scaling.json" "$BASELINE" "$MAX_REGRESS"
fi
