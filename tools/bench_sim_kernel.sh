#!/usr/bin/env sh
# Measures the event-kernel hot paths that BENCH_sim_kernel.json tracks:
# the simulator/network/traffic micro-benchmarks plus the Table-II macro
# sweep. Run it once on the baseline commit and once on the candidate,
# then diff the JSON medians.
#
#   ./tools/bench_sim_kernel.sh [build-dir] [out.json]
#
# Requires a Release build with ARIA_BUILD_BENCH=ON (the default).
set -eu

BUILD_DIR="${1:-build}"
OUT="${2:-bench_sim_kernel.json}"

MICRO="$BUILD_DIR/bench/bench_micro_core"
TABLE2="$BUILD_DIR/bench/bench_table2_scenarios"

if [ ! -x "$MICRO" ]; then
  echo "error: $MICRO not found -- build with -DARIA_BUILD_BENCH=ON first" >&2
  exit 1
fi

echo "== micro: simulator / network / traffic hot paths (median of 3) =="
"$MICRO" \
  --benchmark_filter='Simulator|Network|Traffic' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

if [ -x "$TABLE2" ]; then
  echo "== macro: full Table-II scenario sweep (wall clock) =="
  start=$(date +%s%N)
  "$TABLE2" > /dev/null
  end=$(date +%s%N)
  echo "bench_table2_scenarios: $(( (end - start) / 1000000 )) ms"
else
  echo "note: $TABLE2 not built, skipping macro sweep" >&2
fi

echo "micro results written to $OUT"
