#!/usr/bin/env sh
# Measures the event-kernel hot paths that BENCH_sim_kernel.json tracks:
# the simulator/network/traffic micro-benchmarks plus the Table-II macro
# sweep. Run it once on the baseline commit and once on the candidate,
# then diff the JSON medians.
#
#   ./tools/bench_sim_kernel.sh [build-dir] [out.json] [--repetitions N]
#
# --repetitions sets the google-benchmark repetition count (default 3);
# the bench_all gate drops it to 1 for CI smoke runs where noise beats
# runtime. Requires a Release build with ARIA_BUILD_BENCH=ON (the default).
set -eu

BUILD_DIR="build"
OUT="bench_sim_kernel.json"
REPETITIONS=3

# Positional [build-dir] [out.json] stay accepted for compatibility;
# --repetitions may appear anywhere.
pos=0
while [ $# -gt 0 ]; do
  case "$1" in
    --repetitions)
      [ $# -ge 2 ] || { echo "error: --repetitions requires a count" >&2; exit 2; }
      REPETITIONS="$2"
      shift 2
      ;;
    --repetitions=*)
      REPETITIONS="${1#--repetitions=}"
      shift
      ;;
    -*)
      echo "error: unknown option $1" >&2
      exit 2
      ;;
    *)
      pos=$((pos + 1))
      case "$pos" in
        1) BUILD_DIR="$1" ;;
        2) OUT="$1" ;;
        *) echo "error: unexpected argument $1" >&2; exit 2 ;;
      esac
      shift
      ;;
  esac
done

case "$REPETITIONS" in
  ''|*[!0-9]*|0)
    echo "error: --repetitions requires a positive integer (got '$REPETITIONS')" >&2
    exit 2
    ;;
esac

MICRO="$BUILD_DIR/bench/bench_micro_core"
TABLE2="$BUILD_DIR/bench/bench_table2_scenarios"

if [ ! -x "$MICRO" ]; then
  echo "error: $MICRO not found -- build with -DARIA_BUILD_BENCH=ON first" >&2
  exit 1
fi

echo "== micro: simulator / network / traffic hot paths (median of $REPETITIONS) =="
"$MICRO" \
  --benchmark_filter='Simulator|Network|Traffic' \
  --benchmark_repetitions="$REPETITIONS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

if [ -x "$TABLE2" ]; then
  echo "== macro: full Table-II scenario sweep (wall clock) =="
  start=$(date +%s%N)
  "$TABLE2" > /dev/null
  end=$(date +%s%N)
  echo "bench_table2_scenarios: $(( (end - start) / 1000000 )) ms"
else
  echo "note: $TABLE2 not built, skipping macro sweep" >&2
fi

echo "micro results written to $OUT"
