// aria_sweep: multi-worker scenario sweep runner with deterministic merged
// reports (docs/sweep.md).
//
//   aria_sweep --preset table2-smoke --seeds 2 --workers 8 --out out/
//   aria_sweep --matrix my_matrix.txt --workers 4 --out out/
//   aria_sweep --list-presets
//
// Report files (summary.json / summary.csv / runs.csv) are byte-identical
// for any --workers value; wall-clock is printed to stderr only, so stdout
// and the report directory stay deterministic.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "metrics/report.hpp"
#include "sweep/matrix.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace {

struct SweepCli {
  std::string preset;
  std::string matrix_file;
  std::size_t seeds{1};
  std::uint64_t seed{1};
  std::size_t workers{0};  // 0 = all hardware threads
  std::string out_dir;
  bool list_presets{false};
  bool quiet{false};
  bool show_help{false};
};

const char kUsage[] = R"(aria_sweep: parallel scenario sweeps with deterministic merged reports

usage: aria_sweep (--preset NAME | --matrix FILE) [options]

  --preset NAME       built-in matrix: table2, table2-smoke, quick,
                      scale2k, scale10k-hier, chaos-hier, adversary
  --matrix FILE       matrix file: one row per line of aria_sim flags
                      (plus --label NAME); '#' comments
  --seeds N           seeds per preset row (default: 1; matrix rows use
                      their own --runs)
  --seed S            base seed for presets (default: 1)
  --workers N         worker threads (default: one per hardware thread)
  --out DIR           write summary.json, summary.csv, runs.csv into DIR
  --list-presets      print the built-in preset names
  --quiet             suppress the stdout summary table
  --help              this text

The merged report bytes are identical for any --workers value; see
docs/sweep.md for the determinism contract and the matrix file format.
)";

std::optional<std::string> parse(const std::vector<std::string>& args,
                                 SweepCli& out) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      (void)flag;
      return args[++i];
    };
    if (a == "--help" || a == "-h") {
      out.show_help = true;
    } else if (a == "--list-presets") {
      out.list_presets = true;
    } else if (a == "--quiet") {
      out.quiet = true;
    } else if (a == "--preset") {
      const auto v = next("--preset");
      if (!v) return "--preset requires a name";
      out.preset = *v;
    } else if (a == "--matrix") {
      const auto v = next("--matrix");
      if (!v) return "--matrix requires a file path";
      out.matrix_file = *v;
    } else if (a == "--out") {
      const auto v = next("--out");
      if (!v) return "--out requires a directory";
      out.out_dir = *v;
    } else if (a == "--seeds") {
      const auto v = next("--seeds");
      const long long n = v ? std::atoll(v->c_str()) : 0;
      if (n <= 0) return "--seeds requires a positive integer";
      out.seeds = static_cast<std::size_t>(n);
    } else if (a == "--seed") {
      const auto v = next("--seed");
      const long long n = v ? std::atoll(v->c_str()) : -1;
      if (n < 0) return "--seed requires a non-negative integer";
      out.seed = static_cast<std::uint64_t>(n);
    } else if (a == "--workers") {
      const auto v = next("--workers");
      const long long n = v ? std::atoll(v->c_str()) : 0;
      if (n <= 0) return "--workers requires a positive integer";
      out.workers = static_cast<std::size_t>(n);
    } else {
      return "unknown option: " + a;
    }
  }
  if (!out.show_help && !out.list_presets) {
    if (out.preset.empty() == out.matrix_file.empty()) {
      return "exactly one of --preset or --matrix is required";
    }
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aria;

  SweepCli cli;
  if (const auto error = parse({argv + 1, argv + argc}, cli)) {
    std::cerr << "error: " << *error << "\n\n" << kUsage;
    return 2;
  }
  if (cli.show_help) {
    std::cout << kUsage;
    return 0;
  }
  if (cli.list_presets) {
    for (const auto& name : sweep::SweepMatrix::preset_names()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  sweep::SweepMatrix matrix;
  std::vector<sweep::RunSpec> specs;
  try {
    matrix = cli.preset.empty()
                 ? sweep::SweepMatrix::parse_file(cli.matrix_file)
                 : sweep::SweepMatrix::preset(cli.preset, cli.seeds, cli.seed);
    specs = matrix.expand();
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  const std::size_t workers =
      cli.workers == 0 ? default_worker_count() : cli.workers;
  std::cerr << "sweep: " << matrix.entries().size() << " row(s), "
            << specs.size() << " run(s), " << workers << " worker(s)\n";

  sweep::RunnerOptions options;
  options.workers = workers;
  if (!cli.quiet) {
    options.progress = [](std::size_t done, std::size_t total,
                          const sweep::RunSpec& spec) {
      std::cerr << "  [" << done << "/" << total << "] " << spec.label
                << " seed " << spec.seed << "\n";
    };
  }

  const auto start = std::chrono::steady_clock::now();
  const auto results = sweep::run_all(specs, options);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto report = sweep::SweepReport::build(specs, results);

  if (!cli.quiet) {
    metrics::Table table{{"label", "runs", "completed", "completion[min]",
                          "resched", "missed dl", "traffic MiB/run",
                          "stranded"}};
    for (const auto& row : report.rows) {
      table.add_row({row.label, std::to_string(row.runs),
                     metrics::Table::num(row.completed.mean(), 0),
                     metrics::Table::num(row.completion_minutes.mean()),
                     metrics::Table::num(row.reschedules.mean(), 0),
                     metrics::Table::num(row.missed_deadlines.mean(), 0),
                     metrics::Table::num(row.traffic_mib.mean(), 2),
                     std::to_string(row.stranded)});
    }
    table.print(std::cout);
    std::cout << "totals: " << report.total_runs << " run(s), stranded "
              << report.total_stranded << ", lifecycle violations "
              << report.total_violations << ", traffic "
              << metrics::Table::num(
                     static_cast<double>(report.traffic.total().bytes) /
                         (1024.0 * 1024.0),
                     1)
              << " MiB\n";
  }
  std::cerr << "sweep wall: " << metrics::Table::num(wall_s, 2) << " s ("
            << specs.size() << " runs, " << workers << " workers)\n";

  if (!cli.out_dir.empty()) {
    std::filesystem::create_directories(cli.out_dir);
    const auto base = std::filesystem::path{cli.out_dir};
    const auto write = [&](const char* name, auto&& writer) {
      std::ofstream out{base / name, std::ios::binary};
      if (!out) {
        std::cerr << "error: cannot write " << (base / name).string() << "\n";
        std::exit(2);
      }
      writer(out);
    };
    write("summary.json",
          [&](std::ostream& o) { report.write_json(o); });
    write("summary.csv",
          [&](std::ostream& o) { report.write_summary_csv(o); });
    write("runs.csv", [&](std::ostream& o) { report.write_runs_csv(o); });
    std::cerr << "report written to " << cli.out_dir
              << " (summary.json, summary.csv, runs.csv)\n";
  }

  return (report.total_violations != 0 || report.total_stranded != 0) ? 1 : 0;
}
