// Figure 10: network overhead per message type for representative scenarios.
// Paper reading: REQUEST traffic is flat across scenarios (initial
// allocation), ASSIGN/ACCEPT are negligible, INFORM dominates the
// rescheduling overhead, iExpanding informs less than iMixed (jobs start
// sooner on new nodes), and iInform1 is the best traffic/performance
// compromise. The paper quotes ~3 MB per node over ~42h ~= 149 bps.
#include "bench_common.hpp"

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Figure 10", "Network Overhead Comparison");
  const char* names[] = {"Mixed",   "iMixed",     "iInform1",
                         "iInform4", "iExpanding", "iHighLoad"};
  std::vector<workload::ScenarioSummary> summaries;
  for (const char* n : names) summaries.push_back(run(n));

  metrics::Table table{{"scenario", "REQUEST MiB", "INFORM MiB", "ACCEPT MiB",
                        "ASSIGN MiB", "total MiB", "MiB/node", "bps/node"}};
  for (const auto& s : summaries) {
    const auto cfg = bench_scenario(s.name);
    const double nodes = static_cast<double>(
        cfg.expansion ? cfg.expansion->target_node_count : cfg.node_count);
    const double per_node = s.traffic_mib_mean_total() / nodes;
    const double bps =
        per_node * 1024.0 * 1024.0 * 8.0 / cfg.horizon.to_seconds();
    table.add_row({s.name, metrics::Table::num(s.traffic_mib_mean("REQUEST")),
                   metrics::Table::num(s.traffic_mib_mean("INFORM")),
                   metrics::Table::num(s.traffic_mib_mean("ACCEPT"), 2),
                   metrics::Table::num(s.traffic_mib_mean("ASSIGN"), 2),
                   metrics::Table::num(s.traffic_mib_mean_total()),
                   metrics::Table::num(per_node, 2),
                   metrics::Table::num(bps, 0)});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\npaper reference: ~3 MB/node over ~42 h (~149 bps); INFORM "
               "dominates rescheduling overhead\n\n";

  auto by = [&](const char* n) -> const workload::ScenarioSummary& {
    for (const auto& s : summaries) {
      if (s.name == n) return s;
    }
    std::abort();
  };
  // REQUEST flat across same-size scenarios (within 20%).
  const double req_base = by("iMixed").traffic_mib_mean("REQUEST");
  bool flat = true;
  for (const char* n : {"Mixed", "iInform1", "iInform4", "iHighLoad"}) {
    if (std::abs(by(n).traffic_mib_mean("REQUEST") - req_base) >
        req_base * 0.2) {
      flat = false;
    }
  }
  shape("REQUEST traffic is flat across scenarios", flat);
  shape("ACCEPT and ASSIGN are a negligible share (< 5% of total in iMixed)",
        by("iMixed").traffic_mib_mean("ACCEPT") +
                by("iMixed").traffic_mib_mean("ASSIGN") <
            by("iMixed").traffic_mib_mean_total() * 0.05);
  shape("INFORM dominates rescheduling overhead (iMixed INFORM > REQUEST)",
        by("iMixed").traffic_mib_mean("INFORM") >
            by("iMixed").traffic_mib_mean("REQUEST"));
  shape("iExpanding generates less INFORM traffic than iMixed",
        by("iExpanding").traffic_mib_mean("INFORM") <
            by("iMixed").traffic_mib_mean("INFORM"));
  shape("iInform1 cuts INFORM traffic substantially vs iMixed",
        by("iInform1").traffic_mib_mean("INFORM") <
            by("iMixed").traffic_mib_mean("INFORM") * 0.85);
  shape("iInform1 keeps completion time comparable to iMixed",
        by("iInform1").completion_minutes.mean() <
            by("iMixed").completion_minutes.mean() * 1.2);
  return 0;
}
