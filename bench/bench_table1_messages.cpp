// Table I: protocol messages and fields — dumps the message model and
// microbenchmarks message construction, polymorphic dispatch, and transport
// (the per-message costs every flood pays).
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/messages.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace aria;
using namespace aria::literals;

grid::JobSpec sample_job(Rng& rng) {
  grid::JobSpec j;
  j.id = JobId::generate(rng);
  j.requirements.min_memory_gb = 4;
  j.ert = 2_h;
  return j;
}

// Printed once so the bench output documents Table I.
struct TableOneDump {
  TableOneDump() {
    std::cout << "Table I — protocol messages and fields\n"
              << "  REQUEST: initiator address | job UUID | job profile      ("
              << proto::kRequestWireBytes << " B)\n"
              << "  ACCEPT:  node address      | job UUID | cost             ("
              << proto::kAcceptWireBytes << " B)\n"
              << "  INFORM:  assignee address  | job UUID | job profile | cost ("
              << proto::kInformWireBytes << " B)\n"
              << "  ASSIGN:  initiator address | job UUID | job profile      ("
              << proto::kAssignWireBytes << " B)\n\n";
  }
} dump;

void BM_MessageConstructRequest(benchmark::State& state) {
  Rng rng{1};
  const auto job = sample_job(rng);
  const proto::FloodMeta meta{Uuid::generate(rng), 8, NodeId{1}};
  for (auto _ : state) {
    auto m = std::make_unique<proto::RequestMsg>(NodeId{1}, job, meta);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MessageConstructRequest);

void BM_MessageConstructAccept(benchmark::State& state) {
  Rng rng{2};
  const auto id = JobId::generate(rng);
  for (auto _ : state) {
    auto m = std::make_unique<proto::AcceptMsg>(NodeId{1}, id, 42.0);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MessageConstructAccept);

void BM_MessageDynamicDispatch(benchmark::State& state) {
  Rng rng{3};
  std::vector<std::unique_ptr<sim::Message>> msgs;
  const auto job = sample_job(rng);
  const proto::FloodMeta meta{Uuid::generate(rng), 8, NodeId{1}};
  msgs.push_back(std::make_unique<proto::RequestMsg>(NodeId{1}, job, meta));
  msgs.push_back(std::make_unique<proto::AcceptMsg>(NodeId{1}, job.id, 1.0));
  msgs.push_back(std::make_unique<proto::InformMsg>(NodeId{1}, job, 1.0, meta));
  msgs.push_back(std::make_unique<proto::AssignMsg>(NodeId{1}, job));
  std::size_t i = 0;
  for (auto _ : state) {
    const sim::Message* m = msgs[i++ & 3].get();
    int kind = 0;
    if (dynamic_cast<const proto::RequestMsg*>(m) != nullptr) kind = 1;
    else if (dynamic_cast<const proto::AcceptMsg*>(m) != nullptr) kind = 2;
    else if (dynamic_cast<const proto::InformMsg*>(m) != nullptr) kind = 3;
    else if (dynamic_cast<const proto::AssignMsg*>(m) != nullptr) kind = 4;
    benchmark::DoNotOptimize(kind);
  }
}
BENCHMARK(BM_MessageDynamicDispatch);

void BM_NetworkSendDeliver(benchmark::State& state) {
  sim::Simulator simulator;
  sim::Network net{simulator,
                   std::make_unique<sim::FixedLatencyModel>(1_ms), Rng{4}};
  net.attach(NodeId{2}, [](sim::Envelope) {});
  Rng rng{5};
  const auto job = sample_job(rng);
  const proto::FloodMeta meta{Uuid::generate(rng), 8, NodeId{1}};
  for (auto _ : state) {
    net.send(NodeId{1}, NodeId{2},
             std::make_unique<proto::RequestMsg>(NodeId{1}, job, meta));
    simulator.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_UuidGenerate(benchmark::State& state) {
  Rng rng{6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Uuid::generate(rng));
  }
}
BENCHMARK(BM_UuidGenerate);

void BM_UuidToString(benchmark::State& state) {
  Rng rng{7};
  const Uuid u = Uuid::generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(u.to_string());
  }
}
BENCHMARK(BM_UuidToString);

}  // namespace
