// Figure 6: idle nodes under different load levels (LowLoad / Mixed /
// HighLoad, each ± rescheduling). Paper reading: with rescheduling the grid
// sustains higher utilization at every load level.
#include "bench_common.hpp"

namespace {
double window_mean(const aria::metrics::Series& s, double from_h, double to_h) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : s.points()) {
    if (p.t_hours < from_h || p.t_hours > to_h) continue;
    sum += p.value;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}
}  // namespace

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Figure 6", "Idle Nodes under Load");
  const char* names[] = {"LowLoad",  "Mixed",  "HighLoad",
                         "iLowLoad", "iMixed", "iHighLoad"};
  std::vector<workload::ScenarioSummary> summaries;
  for (const char* n : names) summaries.push_back(run(n));

  std::vector<metrics::Series> series;
  for (auto& s : summaries) series.push_back(s.idle_series.downsampled(30));
  std::cout << "\nidle nodes vs time:\n";
  metrics::print_series_matrix(std::cout, series, 40);

  std::cout << "\nsubmission windows (horizontal arrows in the paper):\n";
  for (const char* n : {"LowLoad", "Mixed", "HighLoad"}) {
    const auto cfg = bench_scenario(n);
    std::cout << "  " << n << ": "
              << (TimePoint::origin() + cfg.submission_start).to_string()
              << " - " << cfg.submission_end().to_string() << "\n";
  }

  auto by = [&](const char* n) -> const workload::ScenarioSummary& {
    for (const auto& s : summaries) {
      if (s.name == n) return s;
    }
    std::abort();
  };
  auto busy_idle = [&](const char* plain, const char* i) {
    const auto cfg = bench_scenario(plain);
    const double from = cfg.submission_start.to_hours();
    const double to = cfg.submission_end().to_hours() + 2.0;
    return std::pair{window_mean(by(plain).idle_series, from, to),
                     window_mean(by(i).idle_series, from, to)};
  };
  const auto [low, ilow] = busy_idle("LowLoad", "iLowLoad");
  const auto [mid, imid] = busy_idle("Mixed", "iMixed");
  const auto [high, ihigh] = busy_idle("HighLoad", "iHighLoad");
  std::cout << "\nbusy-phase mean idle: LowLoad " << low << " -> " << ilow
            << "; Mixed " << mid << " -> " << imid << "; HighLoad " << high
            << " -> " << ihigh << "\n\n";

  shape("rescheduling raises utilization at low load", ilow < low);
  shape("rescheduling raises utilization at baseline load", imid < mid);
  shape("rescheduling raises utilization at high load", ihigh < high);
  shape("higher load occupies more of the grid (HighLoad < LowLoad idle)",
        high < low);
  return 0;
}
