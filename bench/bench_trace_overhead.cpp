// Tracing overhead micro-bench: the full-scale Table-II iMixed run (500
// nodes, 1000 jobs, 41h40m simulated) with tracing off vs on, wall-clock
// compared. The acceptance bar in docs/tracing.md is < 2% slowdown with the
// default sampling (every 16th message) — tracing is a struct copy into a
// pre-sized ring, off the allocator and off the RNG.
//
// Methodology: one uncounted warm-up pair, then ARIA_BENCH_RUNS interleaved
// off/on pairs at the same seed; the reported overhead compares the *minima*
// (the min is the standard noise-robust wall-clock estimator — cold caches
// and scheduler jitter only ever make a run slower).
//
// Environment knobs (bench_common.hpp): ARIA_BENCH_RUNS (default 2),
// ARIA_BENCH_SEED, ARIA_BENCH_SCALE.
#include <algorithm>

#include "bench_common.hpp"

#include "workload/engine.hpp"

int main() {
  using namespace aria;

  const std::size_t runs = bench::bench_runs();
  const std::uint64_t seed = bench::bench_seed();
  const workload::ScenarioConfig base = bench::bench_scenario("iMixed");
  workload::ScenarioConfig traced = base;
  traced.trace.enabled = true;  // default sampling: every 16th message

  std::printf("tracing overhead, scenario iMixed, %zu nodes, %zu jobs, "
              "%zu measured pair(s) after 1 warm-up, base seed %llu\n",
              base.node_count, base.job_count, runs,
              static_cast<unsigned long long>(seed));

  (void)workload::run_scenario(base, seed);  // warm-up (allocator, caches)
  (void)workload::run_scenario(traced, seed);

  std::printf("%6s  %10s  %10s  %9s  %12s\n", "pair", "off [s]", "on [s]",
              "delta", "records");
  double off_min = 1e300, on_min = 1e300;
  for (std::size_t i = 0; i < runs; ++i) {
    const workload::RunResult off = workload::run_scenario(base, seed);
    const workload::RunResult on = workload::run_scenario(traced, seed);
    if (off.events_fired != on.events_fired ||
        off.completed() != on.completed()) {
      std::fprintf(stderr, "FAIL: tracing perturbed the run\n");
      return 1;
    }
    off_min = std::min(off_min, off.wall_seconds);
    on_min = std::min(on_min, on.wall_seconds);
    std::printf("%6zu  %10.3f  %10.3f  %+8.2f%%  %12llu\n", i,
                off.wall_seconds, on.wall_seconds,
                100.0 * (on.wall_seconds - off.wall_seconds) /
                    off.wall_seconds,
                static_cast<unsigned long long>(on.trace->total_recorded()));
  }

  const double overhead = 100.0 * (on_min - off_min) / off_min;
  std::printf("\nbest-of-%zu: off %.3f s, on %.3f s, overhead %+.2f%% "
              "(acceptance bar: < 2%%)\n",
              runs, off_min, on_min, overhead);
  return 0;
}
