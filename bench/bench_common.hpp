// Shared plumbing for the figure/table reproduction benches.
//
// Every bench binary reruns the paper's scenarios at full scale (500 nodes,
// 1000 jobs, 41h40m of simulated time) and prints the rows/series the paper
// reports. Environment knobs:
//   ARIA_BENCH_RUNS   repetitions per scenario (default 2; paper used 10)
//   ARIA_BENCH_SEED   base seed (default 1)
//   ARIA_BENCH_SCALE  workload scale factor in (0, 1] (default 1.0); values
//                     below 1 shrink nodes/jobs proportionally for smoke runs
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "workload/aggregate.hpp"
#include "workload/scenario.hpp"

namespace aria::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const double parsed = std::atof(v);
  return parsed > 0.0 ? parsed : fallback;
}

inline std::size_t bench_runs() { return env_size("ARIA_BENCH_RUNS", 2); }
inline std::uint64_t bench_seed() {
  return env_size("ARIA_BENCH_SEED", 1);
}

/// Scenario by name, with the optional ARIA_BENCH_SCALE shrink applied.
inline workload::ScenarioConfig bench_scenario(const std::string& name) {
  workload::ScenarioConfig c = workload::scenario_by_name(name);
  const double scale = env_double("ARIA_BENCH_SCALE", 1.0);
  if (scale < 1.0) {
    c.node_count = std::max<std::size_t>(
        20, static_cast<std::size_t>(static_cast<double>(c.node_count) * scale));
    c.job_count = std::max<std::size_t>(
        20, static_cast<std::size_t>(static_cast<double>(c.job_count) * scale));
    if (c.expansion) {
      c.expansion->target_node_count = std::max(
          c.node_count + 10,
          static_cast<std::size_t>(
              static_cast<double>(c.expansion->target_node_count) * scale));
    }
  }
  return c;
}

inline workload::ScenarioSummary run(const std::string& name,
                                     Duration curve_bucket =
                                         Duration::minutes(30)) {
  const auto cfg = bench_scenario(name);
  std::fprintf(stderr, "[bench] running %s x%zu ...\n", name.c_str(),
               bench_runs());
  return workload::run_and_summarize(cfg, bench_runs(), bench_seed(),
                                     curve_bucket);
}

inline void header(const std::string& id, const std::string& title) {
  std::cout << "\n================================================================\n"
            << id << " — " << title << "\n"
            << "scenarios at scale "
            << env_double("ARIA_BENCH_SCALE", 1.0) << ", "
            << bench_runs() << " run(s) each, base seed " << bench_seed()
            << "\n================================================================\n";
}

/// One "did the paper's shape reproduce?" verdict line.
inline void shape(const std::string& what, bool ok) {
  std::cout << (ok ? "  [shape OK]   " : "  [shape MISS] ") << what << "\n";
}

}  // namespace aria::bench
