// Figure 8: sensitivity of completion time to the rescheduling policy — the
// number of advertised jobs per period (iInform1/iMixed/iInform4) and the
// improvement threshold (iInform15m/iInform30m). Paper reading: minimal
// differences; iInform4 achieves the lowest waiting time.
#include "bench_common.hpp"

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Figure 8", "Job Completion Time (Rescheduling Policies, minutes)");
  const char* names[] = {"iInform1", "iMixed", "iInform4", "iInform15m",
                         "iInform30m"};
  std::vector<workload::ScenarioSummary> summaries;
  for (const char* n : names) summaries.push_back(run(n));

  metrics::Table table{{"scenario", "waiting[min]", "execution[min]",
                        "completion[min]", "reschedules", "INFORM MiB/run"}};
  for (const auto& s : summaries) {
    table.add_row({s.name, metrics::Table::num(s.waiting_minutes.mean()),
                   metrics::Table::num(s.execution_minutes.mean()),
                   metrics::Table::num(s.completion_minutes.mean()),
                   metrics::Table::num(s.reschedules.mean(), 0),
                   metrics::Table::num(s.traffic_mib_mean("INFORM"))});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n";

  auto by = [&](const char* n) -> const workload::ScenarioSummary& {
    for (const auto& s : summaries) {
      if (s.name == n) return s;
    }
    std::abort();
  };
  // "Minimal differences" — all five within a modest band of the baseline.
  bool close = true;
  const double base = by("iMixed").completion_minutes.mean();
  for (const auto& s : summaries) {
    if (std::abs(s.completion_minutes.mean() - base) > base * 0.2) close = false;
  }
  shape("policy variants differ only minimally in completion time", close);
  shape("iInform4 achieves the lowest waiting time",
        by("iInform4").waiting_minutes.mean() <=
            std::min({by("iInform1").waiting_minutes.mean(),
                      by("iMixed").waiting_minutes.mean()}) *
                1.05);
  shape("more advertised jobs => more INFORM traffic (1 < 2 < 4)",
        by("iInform1").traffic_mib_mean("INFORM") <
                by("iMixed").traffic_mib_mean("INFORM") &&
            by("iMixed").traffic_mib_mean("INFORM") <
                by("iInform4").traffic_mib_mean("INFORM"));
  shape("larger thresholds reduce the number of reschedules",
        by("iInform30m").reschedules.mean() < by("iMixed").reschedules.mean());
  return 0;
}
