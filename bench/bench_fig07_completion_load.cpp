// Figure 7: average job completion time under different load levels.
// Paper reading: iHighLoad performs comparably to LowLoad even though jobs
// arrive four times faster.
#include "bench_common.hpp"

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Figure 7", "Job Completion Time under Load (minutes)");
  const char* names[] = {"LowLoad",  "Mixed",  "HighLoad",
                         "iLowLoad", "iMixed", "iHighLoad"};
  std::vector<workload::ScenarioSummary> summaries;
  for (const char* n : names) summaries.push_back(run(n));

  metrics::Table table{{"scenario", "waiting[min]", "execution[min]",
                        "completion[min]", "reschedules"}};
  for (const auto& s : summaries) {
    table.add_row({s.name, metrics::Table::num(s.waiting_minutes.mean()),
                   metrics::Table::num(s.execution_minutes.mean()),
                   metrics::Table::num(s.completion_minutes.mean()),
                   metrics::Table::num(s.reschedules.mean(), 0)});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n";

  auto by = [&](const char* n) -> const workload::ScenarioSummary& {
    for (const auto& s : summaries) {
      if (s.name == n) return s;
    }
    std::abort();
  };
  shape("rescheduling helps at every load level",
        by("iLowLoad").completion_minutes.mean() <
                by("LowLoad").completion_minutes.mean() &&
            by("iMixed").completion_minutes.mean() <
                by("Mixed").completion_minutes.mean() &&
            by("iHighLoad").completion_minutes.mean() <
                by("HighLoad").completion_minutes.mean());
  shape("iHighLoad is comparable to LowLoad (4x the submission rate)",
        by("iHighLoad").completion_minutes.mean() <
            by("LowLoad").completion_minutes.mean() * 1.35);
  shape("without rescheduling, high load is clearly worse than low load",
        by("HighLoad").completion_minutes.mean() >
            by("LowLoad").completion_minutes.mean() * 1.2);
  return 0;
}
