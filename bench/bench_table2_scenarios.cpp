// Table II: the full scenario matrix. Prints every scenario's definition
// (as the paper's table does) plus a one-run smoke row of headline metrics,
// demonstrating that all 26 configurations execute.
//
// The smoke sweep runs through the sweep engine (src/sweep) on every
// hardware thread; results are keyed by matrix order, so the printed rows
// are identical to the serial loop this bench used before the engine
// existed. ARIA_SWEEP_WORKERS overrides the worker count.
#include "bench_common.hpp"
#include "sweep/matrix.hpp"
#include "sweep/runner.hpp"

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Table II", "Summary of Evaluation Scenarios (all 26)");

  metrics::Table defs{{"scenario", "schedulers", "resched", "interval",
                       "deadline slack", "ERT error", "expansion"}};
  for (const auto& c : workload::all_scenarios()) {
    std::string mix;
    for (const auto k : c.scheduler_mix) {
      if (!mix.empty()) mix += "/";
      mix += sched::to_string(k);
    }
    std::string err;
    switch (c.ert_error.mode) {
      case grid::ErtErrorMode::kExact: err = "exact"; break;
      case grid::ErtErrorMode::kSymmetric:
        err = "+-" + metrics::Table::num(c.ert_error.epsilon * 100, 0) + "%";
        break;
      case grid::ErtErrorMode::kOptimistic:
        err = "always low (" +
              metrics::Table::num(c.ert_error.epsilon * 100, 0) + "%)";
        break;
    }
    defs.add_row({c.name, mix, c.aria.dynamic_rescheduling ? "yes" : "no",
                  c.submission_interval.to_string(),
                  c.jobs.deadline_slack_mean
                      ? c.jobs.deadline_slack_mean->to_string()
                      : "-",
                  err, c.expansion ? "500->700" : "-"});
  }
  std::cout << "\nscenario definitions:\n";
  defs.print(std::cout);

  // Smoke sweep: one downsized run per scenario proving the whole matrix
  // executes (the per-figure benches measure at full scale). The
  // "table2-smoke" preset applies the same downsizing the serial loop here
  // always used.
  std::cout << "\nsmoke sweep (downsized: 100 nodes, 150 jobs, 1 run):\n";
  const auto matrix =
      sweep::SweepMatrix::preset("table2-smoke", 1, bench_seed());
  const auto specs = matrix.expand();
  sweep::RunnerOptions options;
  options.workers = env_size("ARIA_SWEEP_WORKERS", 0);
  const auto results = sweep::run_all(specs, options);

  metrics::Table rows{{"scenario", "completed", "completion[min]",
                       "reschedules", "missed deadlines", "traffic MiB"}};
  bool all_clean = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& r = results[i];
    all_clean = all_clean && r.tracker.violations().empty() &&
                r.completed() == specs[i].config.job_count;
    rows.add_row({specs[i].label, std::to_string(r.completed()),
                  metrics::Table::num(r.mean_completion_minutes()),
                  std::to_string(r.tracker.total_reschedules()),
                  std::to_string(r.missed_deadlines()),
                  metrics::Table::num(r.traffic_mib_total())});
  }
  rows.print(std::cout);
  std::cout << "\n";
  shape("all 26 scenarios complete their workload without violations",
        all_clean);
  return 0;
}
