// Table II: the full scenario matrix. Prints every scenario's definition
// (as the paper's table does) plus a one-run smoke row of headline metrics,
// demonstrating that all 26 configurations execute.
#include "bench_common.hpp"

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Table II", "Summary of Evaluation Scenarios (all 26)");

  metrics::Table defs{{"scenario", "schedulers", "resched", "interval",
                       "deadline slack", "ERT error", "expansion"}};
  for (const auto& c : workload::all_scenarios()) {
    std::string mix;
    for (const auto k : c.scheduler_mix) {
      if (!mix.empty()) mix += "/";
      mix += sched::to_string(k);
    }
    std::string err;
    switch (c.ert_error.mode) {
      case grid::ErtErrorMode::kExact: err = "exact"; break;
      case grid::ErtErrorMode::kSymmetric:
        err = "+-" + metrics::Table::num(c.ert_error.epsilon * 100, 0) + "%";
        break;
      case grid::ErtErrorMode::kOptimistic:
        err = "always low (" +
              metrics::Table::num(c.ert_error.epsilon * 100, 0) + "%)";
        break;
    }
    defs.add_row({c.name, mix, c.aria.dynamic_rescheduling ? "yes" : "no",
                  c.submission_interval.to_string(),
                  c.jobs.deadline_slack_mean
                      ? c.jobs.deadline_slack_mean->to_string()
                      : "-",
                  err, c.expansion ? "500->700" : "-"});
  }
  std::cout << "\nscenario definitions:\n";
  defs.print(std::cout);

  // Smoke sweep: one downsized run per scenario proving the whole matrix
  // executes (the per-figure benches measure at full scale).
  std::cout << "\nsmoke sweep (downsized: 100 nodes, 150 jobs, 1 run):\n";
  metrics::Table rows{{"scenario", "completed", "completion[min]",
                       "reschedules", "missed deadlines", "traffic MiB"}};
  bool all_clean = true;
  for (const auto& full : workload::all_scenarios()) {
    workload::ScenarioConfig c = full;
    c.node_count = 100;
    c.job_count = 150;
    c.submission_interval = c.submission_interval / 2;
    c.horizon = Duration::hours(30);
    if (c.expansion) {
      c.expansion->target_node_count = 140;
      c.expansion->mean_interval = Duration::seconds(30);
    }
    const auto r = workload::run_scenario(c, bench_seed());
    all_clean = all_clean && r.tracker.violations().empty() &&
                r.completed() == c.job_count;
    rows.add_row({c.name, std::to_string(r.completed()),
                  metrics::Table::num(r.mean_completion_minutes()),
                  std::to_string(r.tracker.total_reschedules()),
                  std::to_string(r.missed_deadlines()),
                  metrics::Table::num(r.traffic_mib_total())});
  }
  rows.print(std::cout);
  std::cout << "\n";
  shape("all 26 scenarios complete their workload without violations",
        all_clean);
  return 0;
}
