// Figure 9: sensitivity of completion time to ERT accuracy: exact (Precise),
// +-10% (Mixed baseline), +-25% (Accuracy25), always-optimistic estimates
// (AccuracyBad), each ± rescheduling. Paper reading: symmetric error barely
// matters; even optimistic-only estimates do not hurt excessively.
#include "bench_common.hpp"

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Figure 9", "Sensitivity to ERT Accuracy (minutes)");
  const char* names[] = {"Precise",  "Mixed",   "Accuracy25", "AccuracyBad",
                         "iPrecise", "iMixed",  "iAccuracy25", "iAccuracyBad"};
  std::vector<workload::ScenarioSummary> summaries;
  for (const char* n : names) summaries.push_back(run(n));

  metrics::Table table{{"scenario", "waiting[min]", "execution[min]",
                        "completion[min]"}};
  for (const auto& s : summaries) {
    table.add_row({s.name, metrics::Table::num(s.waiting_minutes.mean()),
                   metrics::Table::num(s.execution_minutes.mean()),
                   metrics::Table::num(s.completion_minutes.mean())});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n";

  auto by = [&](const char* n) -> const workload::ScenarioSummary& {
    for (const auto& s : summaries) {
      if (s.name == n) return s;
    }
    std::abort();
  };
  auto within = [&](const char* a, const char* b, double band) {
    const double va = by(a).completion_minutes.mean();
    const double vb = by(b).completion_minutes.mean();
    return std::abs(va - vb) <= vb * band;
  };
  shape("+-10% error is indistinguishable from exact (Mixed ~ Precise)",
        within("Mixed", "Precise", 0.15));
  shape("+-25% error is indistinguishable from exact (Accuracy25 ~ Precise)",
        within("Accuracy25", "Precise", 0.15));
  shape("same with rescheduling (iAccuracy25 ~ iPrecise)",
        within("iAccuracy25", "iPrecise", 0.15));
  shape("optimistic-only estimates worsen but not excessively "
        "(iAccuracyBad < 1.5x iPrecise)",
        by("iAccuracyBad").completion_minutes.mean() <
            by("iPrecise").completion_minutes.mean() * 1.5);
  shape("AccuracyBad runs longer than Precise (executions overshoot)",
        by("AccuracyBad").execution_minutes.mean() >
            by("Precise").execution_minutes.mean());
  return 0;
}
