// Figure 5: idle nodes in an expanding network (500 -> 700 nodes between
// 1h23m and ~4h10m). Paper reading: with dynamic rescheduling the newly
// joined resources get used — fewer idle nodes despite the growth.
#include "bench_common.hpp"

namespace {
double window_mean(const aria::metrics::Series& s, double from_h, double to_h) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : s.points()) {
    if (p.t_hours < from_h || p.t_hours > to_h) continue;
    sum += p.value;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}
}  // namespace

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Figure 5", "Idle Nodes (Expanding Network)");
  auto plain = run("Expanding");
  auto dynamic = run("iExpanding");

  std::cout << "\ngrid size over time:\n";
  metrics::print_series_matrix(
      std::cout, {plain.node_count_series.downsampled(30)}, 25);

  std::cout << "\nidle nodes vs time:\n";
  metrics::print_series_matrix(
      std::cout,
      {plain.idle_series.downsampled(30), dynamic.idle_series.downsampled(30)},
      40);

  const auto cfg = bench_scenario("Expanding");
  const double growth_start = cfg.expansion->start.to_hours();
  const double busy_end = cfg.submission_end().to_hours() + 3.0;
  const double plain_idle =
      window_mean(plain.idle_series, growth_start, busy_end);
  const double dyn_idle =
      window_mean(dynamic.idle_series, growth_start, busy_end);
  std::cout << "\nmean idle nodes during growth+busy window ["
            << growth_start << "h, " << busy_end << "h]: Expanding="
            << plain_idle << " iExpanding=" << dyn_idle << "\n\n";

  shape("network reaches its target size",
        plain.node_count_series.points().back().value >=
            static_cast<double>(cfg.expansion->target_node_count) - 0.5);
  shape("rescheduling exploits the new nodes (fewer idle than plain)",
        dyn_idle < plain_idle);
  shape("full workload completes in both variants",
        plain.completed_jobs.mean() + 0.5 >=
                static_cast<double>(cfg.job_count) &&
            dynamic.completed_jobs.mean() + 0.5 >=
                static_cast<double>(cfg.job_count));
  return 0;
}
