// Ablation (not in the paper): ARiA vs an omniscient centralized
// meta-scheduler on the same grid and workload. Bounds the price of
// decentralization: the centralized baseline sees every node instantly and
// pays no discovery traffic; ARiA should land within a modest factor while
// sending only bounded flood traffic.
#include "bench_common.hpp"

#include "core/centralized.hpp"
#include "workload/engine.hpp"

namespace {

struct BaselineResult {
  double completion_minutes;
  double waiting_minutes;
  std::size_t completed;
  std::uint64_t moves;
};

// Runs the iMixed grid/workload through the centralized baseline: same node
// profiles, same job distribution, direct assignment plus a periodic global
// rebalance sweep standing in for the INFORM phase.
BaselineResult run_centralized(const aria::workload::ScenarioConfig& cfg,
                               std::uint64_t seed) {
  using namespace aria;
  workload::ScenarioConfig quiet = cfg;
  quiet.job_count = 0;  // the engine builds the grid; we drive submissions
  workload::GridSimulation sim{quiet, seed};
  sim.build();

  // The engine's tracker already observes every node's lifecycle events;
  // the meta-scheduler must report into the same one.
  proto::JobTracker& tracker = sim.tracker();
  proto::CentralizedMetaScheduler meta{sim.simulator(), sim.all_nodes(),
                                       &tracker};
  Rng rng{seed ^ 0xC3A7ULL};
  workload::JobGenerator gen{cfg.jobs, rng.fork(1)};
  Rng pick_rng = rng.fork(2);

  std::uint64_t moves = 0;
  auto nodes = sim.all_nodes();
  for (std::size_t i = 0; i < cfg.job_count; ++i) {
    const TimePoint at = TimePoint::origin() + cfg.submission_start +
                         cfg.submission_interval * static_cast<std::int64_t>(i);
    sim.simulator().schedule_at(at, [&sim, &meta, &gen, &pick_rng, &nodes] {
      auto feasible = [&nodes](const grid::JobRequirements& req) {
        for (auto* n : nodes) {
          if (grid::satisfies(n->profile(), req, n->virtual_org())) return true;
        }
        return false;
      };
      const grid::JobSpec job = gen.next(sim.simulator().now(), feasible);
      const auto pick = static_cast<std::size_t>(pick_rng.uniform_int(
          0, static_cast<std::int64_t>(nodes.size()) - 1));
      meta.submit(job, nodes[pick]->id());
    });
  }
  // Global rebalance sweep with the same period/threshold as ARiA's INFORM.
  sim.simulator().schedule_periodic(
      cfg.aria.inform_period, cfg.aria.inform_period, [&meta, &moves, &cfg] {
        moves += meta.rebalance(cfg.aria.reschedule_threshold.to_seconds());
      });
  sim.simulator().run_until(TimePoint::origin() + cfg.horizon);

  double completion = 0.0, waiting = 0.0;
  std::size_t n = 0;
  for (const auto& [id, r] : tracker.records()) {
    if (!r.done()) continue;
    completion += r.completion_time().to_minutes();
    waiting += r.waiting_time().to_minutes();
    ++n;
  }
  return {n ? completion / static_cast<double>(n) : 0.0,
          n ? waiting / static_cast<double>(n) : 0.0, n, moves};
}

}  // namespace

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Ablation", "ARiA vs Omniscient Centralized Meta-Scheduler");
  const auto cfg = bench_scenario("iMixed");

  const auto aria_summary = run("iMixed");
  std::fprintf(stderr, "[bench] running centralized baseline x%zu ...\n",
               bench_runs());
  double c_completion = 0.0, c_waiting = 0.0, c_completed = 0.0,
         c_moves = 0.0;
  for (std::size_t i = 0; i < bench_runs(); ++i) {
    const BaselineResult b = run_centralized(cfg, bench_seed() + i);
    c_completion += b.completion_minutes;
    c_waiting += b.waiting_minutes;
    c_completed += static_cast<double>(b.completed);
    c_moves += static_cast<double>(b.moves);
  }
  const auto runs_d = static_cast<double>(bench_runs());
  c_completion /= runs_d;
  c_waiting /= runs_d;
  c_completed /= runs_d;
  c_moves /= runs_d;

  metrics::Table table{{"system", "completion[min]", "waiting[min]",
                        "completed", "moves/reschedules", "traffic MiB/run"}};
  table.add_row({"centralized (omniscient)", metrics::Table::num(c_completion),
                 metrics::Table::num(c_waiting),
                 metrics::Table::num(c_completed, 0),
                 metrics::Table::num(c_moves, 0), "0.0"});
  table.add_row({"ARiA (fully distributed)",
                 metrics::Table::num(aria_summary.completion_minutes.mean()),
                 metrics::Table::num(aria_summary.waiting_minutes.mean()),
                 metrics::Table::num(aria_summary.completed_jobs.mean(), 0),
                 metrics::Table::num(aria_summary.reschedules.mean(), 0),
                 metrics::Table::num(aria_summary.traffic_mib_mean_total())});
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n";

  const double ratio = aria_summary.completion_minutes.mean() / c_completion;
  std::cout << "decentralization cost: ARiA / centralized completion ratio = "
            << metrics::Table::num(ratio, 2) << "\n\n";
  shape("centralized omniscient baseline is at least as good as ARiA",
        ratio >= 0.95);
  shape("ARiA stays within 2x of the omniscient baseline", ratio <= 2.0);
  shape("both complete the full workload",
        c_completed + 0.5 >= static_cast<double>(cfg.job_count) &&
            aria_summary.completed_jobs.mean() + 0.5 >=
                static_cast<double>(cfg.job_count));
  return 0;
}
