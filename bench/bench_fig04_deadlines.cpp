// Figure 4: deadline scheduling performance — missed deadlines, average
// lateness over met deadlines, average missed time over failed ones.
// Paper numbers: misses 187 -> 4 (Deadline -> iDeadline) and 236 -> 59
// (DeadlineH -> iDeadlineH); missed time roughly halves with rescheduling.
#include "bench_common.hpp"

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Figure 4", "Deadline Scheduling Performance");
  const char* names[] = {"Deadline", "iDeadline", "DeadlineH", "iDeadlineH"};
  std::vector<workload::ScenarioSummary> summaries;
  for (const char* n : names) summaries.push_back(run(n));

  metrics::Table table{{"scenario", "missed deadlines", "met slack[min]",
                        "missed time[min]", "completion[min]"}};
  for (const auto& s : summaries) {
    table.add_row({s.name, metrics::Table::num(s.missed_deadlines.mean(), 1),
                   metrics::Table::num(s.met_slack_minutes.mean()),
                   metrics::Table::num(s.missed_time_minutes.mean()),
                   metrics::Table::num(s.completion_minutes.mean())});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\npaper reference (10 runs, authors' testbed): Deadline 187 -> "
               "iDeadline 4 misses; DeadlineH 236 -> iDeadlineH 59 misses\n\n";

  auto by = [&](const char* n) -> const workload::ScenarioSummary& {
    for (const auto& s : summaries) {
      if (s.name == n) return s;
    }
    std::abort();
  };
  shape("rescheduling collapses missed deadlines (iDeadline << Deadline)",
        by("iDeadline").missed_deadlines.mean() <
            by("Deadline").missed_deadlines.mean() * 0.5);
  shape("same under tight deadlines (iDeadlineH << DeadlineH)",
        by("iDeadlineH").missed_deadlines.mean() <
            by("DeadlineH").missed_deadlines.mean() * 0.6);
  shape("tight deadlines miss more than loose ones (DeadlineH > Deadline)",
        by("DeadlineH").missed_deadlines.mean() >
            by("Deadline").missed_deadlines.mean() * 0.8);
  shape("met-deadline slack does not degrade with rescheduling",
        by("iDeadline").met_slack_minutes.mean() >
            by("Deadline").met_slack_minutes.mean() * 0.9);
  return 0;
}
