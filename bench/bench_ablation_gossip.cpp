// Ablation (related work §II): query-on-demand discovery (ARiA) vs
// gossip-based state dissemination (Erdil & Lewis style, [25]) on the same
// grid and workload. Gossip pays a constant background traffic cost and
// schedules from a cache that lags reality; ARiA pays per-job flood
// traffic and quotes live state.
#include "bench_common.hpp"

#include "core/gossip.hpp"
#include "core/tracker.hpp"
#include "grid/profile_gen.hpp"
#include "overlay/bootstrap.hpp"
#include "sched/policies.hpp"
#include "sim/latency.hpp"
#include "workload/aggregate.hpp"
#include "workload/jobgen.hpp"

namespace {

using namespace aria;

struct GossipResult {
  double completion_minutes{0.0};
  double waiting_minutes{0.0};
  std::size_t completed{0};
  double traffic_mib{0.0};
  double gossip_mib{0.0};
};

GossipResult run_gossip(const workload::ScenarioConfig& cfg,
                        std::uint64_t seed) {
  Rng rng{seed};
  sim::Simulator simulator;
  sim::Network net{simulator,
                   std::make_unique<sim::GeoLatencyModel>(
                       sim::GeoLatencyModel::Params{.seed = seed ^ 0xA51C17ULL}),
                   rng.fork(1)};
  Rng boot_rng = rng.fork(5);
  overlay::Topology topo = overlay::bootstrap_random(
      cfg.node_count, cfg.bootstrap_avg_degree, boot_rng);

  proto::GossipConfig gossip_config;
  gossip_config.gossip_period = Duration::seconds(30);
  grid::ErtErrorModel ert_error = cfg.ert_error;
  proto::JobTracker tracker;

  std::vector<std::unique_ptr<proto::GossipNode>> nodes;
  nodes.reserve(cfg.node_count);
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    Rng profile_rng = rng.fork(100 + id.value());
    grid::NodeProfile profile = grid::random_node_profile(profile_rng);
    proto::GossipNode::Context ctx;
    ctx.sim = &simulator;
    ctx.net = &net;
    ctx.topo = &topo;
    ctx.config = &gossip_config;
    ctx.ert_error = &ert_error;
    ctx.observer = &tracker;
    nodes.push_back(std::make_unique<proto::GossipNode>(
        ctx, id, profile,
        sched::make_scheduler(profile_rng.uniform_int(0, 1) == 0
                                  ? sched::SchedulerKind::kFcfs
                                  : sched::SchedulerKind::kSjf),
        profile_rng.fork(7)));
    nodes.back()->start();
  }

  workload::JobGenerator gen{cfg.jobs, rng.fork(4)};
  Rng submit_rng = rng.fork(3);
  auto feasible = [&nodes](const grid::JobRequirements& req) {
    for (const auto& n : nodes) {
      if (grid::satisfies(n->profile(), req)) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < cfg.job_count; ++i) {
    const TimePoint at = TimePoint::origin() + cfg.submission_start +
                         cfg.submission_interval * static_cast<std::int64_t>(i);
    simulator.schedule_at(at, [&, i] {
      (void)i;
      grid::JobSpec job = gen.next(simulator.now(), feasible);
      const auto pick = static_cast<std::size_t>(submit_rng.uniform_int(
          0, static_cast<std::int64_t>(nodes.size()) - 1));
      nodes[pick]->submit(std::move(job));
    });
  }
  simulator.run_until(TimePoint::origin() + cfg.horizon);

  GossipResult r;
  double completion = 0.0, waiting = 0.0;
  for (const auto& [id, rec] : tracker.records()) {
    if (!rec.done()) continue;
    ++r.completed;
    completion += rec.completion_time().to_minutes();
    waiting += rec.waiting_time().to_minutes();
  }
  if (r.completed > 0) {
    r.completion_minutes = completion / static_cast<double>(r.completed);
    r.waiting_minutes = waiting / static_cast<double>(r.completed);
  }
  r.traffic_mib =
      static_cast<double>(net.traffic().total().bytes) / (1024.0 * 1024.0);
  r.gossip_mib =
      static_cast<double>(net.traffic().of("GOSSIP").bytes) / (1024.0 * 1024.0);
  nodes.clear();
  return r;
}

}  // namespace

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Ablation", "ARiA (query floods) vs Gossip (state dissemination)");
  const auto cfg = bench_scenario("iMixed");

  const auto aria_summary = run("iMixed");

  std::fprintf(stderr, "[bench] running gossip baseline x%zu ...\n",
               bench_runs());
  GossipResult g{};
  for (std::size_t i = 0; i < bench_runs(); ++i) {
    const GossipResult one = run_gossip(cfg, bench_seed() + i);
    g.completion_minutes += one.completion_minutes;
    g.waiting_minutes += one.waiting_minutes;
    g.completed += one.completed;
    g.traffic_mib += one.traffic_mib;
    g.gossip_mib += one.gossip_mib;
  }
  const auto runs_d = static_cast<double>(bench_runs());
  g.completion_minutes /= runs_d;
  g.waiting_minutes /= runs_d;
  g.traffic_mib /= runs_d;
  g.gossip_mib /= runs_d;
  const double g_completed = static_cast<double>(g.completed) / runs_d;

  metrics::Table table{{"system", "completion[min]", "waiting[min]",
                        "completed", "traffic MiB/run"}};
  table.add_row({"ARiA (iMixed)",
                 metrics::Table::num(aria_summary.completion_minutes.mean()),
                 metrics::Table::num(aria_summary.waiting_minutes.mean()),
                 metrics::Table::num(aria_summary.completed_jobs.mean(), 0),
                 metrics::Table::num(aria_summary.traffic_mib_mean_total())});
  table.add_row({"gossip dissemination",
                 metrics::Table::num(g.completion_minutes),
                 metrics::Table::num(g.waiting_minutes),
                 metrics::Table::num(g_completed, 0),
                 metrics::Table::num(g.traffic_mib)});
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n(gossip background share: "
            << metrics::Table::num(g.gossip_mib) << " MiB of "
            << metrics::Table::num(g.traffic_mib) << " MiB)\n\n";

  shape("ARiA completes the full workload",
        aria_summary.completed_jobs.mean() + 0.5 >=
            static_cast<double>(cfg.job_count));
  shape("gossip strands rare-profile jobs its cache never learns about",
        g_completed < static_cast<double>(cfg.job_count));
  shape("ARiA's live quotes beat gossip's stale cache on completion time",
        aria_summary.completion_minutes.mean() < g.completion_minutes);
  shape("gossip's background dissemination costs more than ARiA's floods",
        g.traffic_mib > aria_summary.traffic_mib_mean_total());
  return 0;
}
