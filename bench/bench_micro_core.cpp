// Microbenchmarks of the hot paths a protocol round exercises: cost
// functions over realistic queue depths, scheduler queue operations, flood
// target selection, raw simulator event throughput, and the network
// send/deliver/metering path. The `Simulator*`, `Network*` and `Traffic*`
// benches feed tools/bench_sim_kernel.sh, which tracks the event-kernel
// perf trajectory in BENCH_sim_kernel.json.
#include <benchmark/benchmark.h>

#include "core/messages.hpp"
#include "overlay/bootstrap.hpp"
#include "overlay/flooding.hpp"
#include "sched/policies.hpp"
#include "sim/latency.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace {

using namespace aria;
using namespace aria::literals;

grid::JobSpec make_job(Rng& rng, Duration ert,
                       std::optional<TimePoint> deadline = {}) {
  grid::JobSpec j;
  j.id = JobId::generate(rng);
  j.ert = ert;
  j.deadline = deadline;
  return j;
}

template <typename Sched>
void fill_queue(Sched& s, Rng& rng, std::size_t depth, bool deadlines) {
  for (std::size_t i = 0; i < depth; ++i) {
    const Duration ert = Duration::minutes(rng.uniform_int(60, 240));
    auto spec = make_job(
        rng, ert,
        deadlines ? std::optional<TimePoint>{TimePoint::origin() + 10_h}
                  : std::nullopt);
    s.enqueue({spec, ert, TimePoint::origin(), 0});
  }
}

void BM_EttcCostOfAdding(benchmark::State& state) {
  Rng rng{1};
  sched::SjfScheduler s;
  fill_queue(s, rng, static_cast<std::size_t>(state.range(0)), false);
  const auto job = make_job(rng, 2_h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.cost_of_adding(job, 90_min, 30_min, TimePoint::origin()));
  }
}
BENCHMARK(BM_EttcCostOfAdding)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

void BM_NalCostOfAdding(benchmark::State& state) {
  Rng rng{2};
  sched::EdfScheduler s;
  fill_queue(s, rng, static_cast<std::size_t>(state.range(0)), true);
  const auto job = make_job(rng, 2_h, TimePoint::origin() + 8_h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.cost_of_adding(job, 90_min, 30_min, TimePoint::origin()));
  }
}
BENCHMARK(BM_NalCostOfAdding)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

void BM_SchedulerEnqueuePop(benchmark::State& state) {
  Rng rng{3};
  sched::SjfScheduler s;
  for (auto _ : state) {
    auto spec = make_job(rng, Duration::minutes(rng.uniform_int(60, 240)));
    s.enqueue({spec, spec.ert, TimePoint::origin(), 0});
    if (s.size() > 32) benchmark::DoNotOptimize(s.pop_next());
  }
}
BENCHMARK(BM_SchedulerEnqueuePop);

void BM_ReschedulingCandidates(benchmark::State& state) {
  Rng rng{4};
  sched::FcfsScheduler s;
  fill_queue(s, rng, 32, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.rescheduling_candidates(2, 30_min, TimePoint::origin()));
  }
}
BENCHMARK(BM_ReschedulingCandidates);

void BM_FloodPickTargets(benchmark::State& state) {
  Rng rng{5};
  overlay::Topology topo = overlay::bootstrap_random(500, 4.0, rng);
  overlay::FloodRelay relay{topo, rng.fork(1)};
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(relay.pick_targets(NodeId{i++ % 500}, 4));
  }
}
BENCHMARK(BM_FloodPickTargets);

void BM_FloodMarkSeen(benchmark::State& state) {
  Rng rng{6};
  overlay::Topology topo;
  overlay::FloodRelay relay{topo, rng.fork(1)};
  const Uuid flood = Uuid::generate(rng);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(relay.mark_seen(NodeId{i++}, flood));
  }
}
BENCHMARK(BM_FloodMarkSeen);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator;
    Rng rng{7};
    for (int i = 0; i < 10000; ++i) {
      simulator.schedule_after(rng.uniform_duration(0_s, 1_h), [] {});
    }
    state.ResumeTiming();
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

// Schedule + cancel half + drain: the watchdog/timeout churn pattern every
// protocol round produces (every REQUEST arms a timeout that is usually
// cancelled before it fires).
void BM_SimulatorScheduleCancelDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    Rng rng{11};
    std::vector<sim::EventHandle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(
          simulator.schedule_after(rng.uniform_duration(0_s, 1_h), [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorScheduleCancelDispatch)->Unit(benchmark::kMillisecond);

// Re-arm churn: cancel + reschedule the same logical timer over and over
// (the failsafe watchdog pattern). Dead entries must not accumulate.
void BM_SimulatorCancelRearmChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    sim::EventHandle h;
    for (int i = 0; i < 10000; ++i) {
      h.cancel();
      h = simulator.schedule_after(10_h, [] {});
    }
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorCancelRearmChurn)->Unit(benchmark::kMillisecond);

// A single periodic timer ticking many times (INFORM/maintenance timers).
void BM_SimulatorPeriodicTicks(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t ticks = 0;
    simulator.schedule_periodic(0_s, 1_s, [&] { ++ticks; });
    simulator.run_until(TimePoint::origin() + Duration::seconds(9999));
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorPeriodicTicks)->Unit(benchmark::kMillisecond);

// Many interleaved run_until() horizons over a periodic-heavy queue:
// stresses the deadline boundary (peek vs pop+push-back).
void BM_SimulatorRunUntilBoundaries(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t ticks = 0;
    for (int p = 0; p < 8; ++p) {
      simulator.schedule_periodic(Duration::millis(125 * p), 1_s,
                                  [&] { ++ticks; });
    }
    for (int slice = 1; slice <= 1000; ++slice) {
      simulator.run_until(TimePoint::origin() +
                          Duration::millis(10 * slice));
    }
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorRunUntilBoundaries)->Unit(benchmark::kMillisecond);

// Full network hot path: one send = metering + event + delivery dispatch.
void BM_NetworkSendDeliver(benchmark::State& state) {
  sim::Simulator simulator;
  sim::Network net{simulator,
                   std::make_unique<sim::FixedLatencyModel>(Duration::millis(5)),
                   Rng{12}};
  net.attach(NodeId{0}, [](sim::Envelope) {});
  net.attach(NodeId{1}, [](sim::Envelope) {});
  Rng rng{13};
  for (auto _ : state) {
    net.send(NodeId{0}, NodeId{1},
             std::make_unique<proto::AcceptMsg>(NodeId{0},
                                                JobId::generate(rng), 1.0));
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSendDeliver);

// Traffic metering alone, via the string-keyed convenience entry point.
void BM_TrafficRecordByName(benchmark::State& state) {
  sim::TrafficLedger ledger;
  for (auto _ : state) {
    ledger.record("REQUEST", 1024);
    benchmark::DoNotOptimize(ledger);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrafficRecordByName);

void BM_TopologyBfsDistance(benchmark::State& state) {
  Rng rng{8};
  overlay::Topology topo = overlay::bootstrap_random(500, 4.0, rng);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topo.distance(NodeId{i % 500}, NodeId{(i * 13 + 7) % 500}));
    ++i;
  }
}
BENCHMARK(BM_TopologyBfsDistance);

void BM_RngNormal(benchmark::State& state) {
  Rng rng{9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal(150.0, 75.0));
  }
}
BENCHMARK(BM_RngNormal);

}  // namespace
