// Microbenchmarks of the hot paths a protocol round exercises: cost
// functions over realistic queue depths, scheduler queue operations, flood
// target selection, and raw simulator event throughput.
#include <benchmark/benchmark.h>

#include "overlay/bootstrap.hpp"
#include "overlay/flooding.hpp"
#include "sched/policies.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace aria;
using namespace aria::literals;

grid::JobSpec make_job(Rng& rng, Duration ert,
                       std::optional<TimePoint> deadline = {}) {
  grid::JobSpec j;
  j.id = JobId::generate(rng);
  j.ert = ert;
  j.deadline = deadline;
  return j;
}

template <typename Sched>
void fill_queue(Sched& s, Rng& rng, std::size_t depth, bool deadlines) {
  for (std::size_t i = 0; i < depth; ++i) {
    const Duration ert = Duration::minutes(rng.uniform_int(60, 240));
    auto spec = make_job(
        rng, ert,
        deadlines ? std::optional<TimePoint>{TimePoint::origin() + 10_h}
                  : std::nullopt);
    s.enqueue({spec, ert, TimePoint::origin(), 0});
  }
}

void BM_EttcCostOfAdding(benchmark::State& state) {
  Rng rng{1};
  sched::SjfScheduler s;
  fill_queue(s, rng, static_cast<std::size_t>(state.range(0)), false);
  const auto job = make_job(rng, 2_h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.cost_of_adding(job, 90_min, 30_min, TimePoint::origin()));
  }
}
BENCHMARK(BM_EttcCostOfAdding)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

void BM_NalCostOfAdding(benchmark::State& state) {
  Rng rng{2};
  sched::EdfScheduler s;
  fill_queue(s, rng, static_cast<std::size_t>(state.range(0)), true);
  const auto job = make_job(rng, 2_h, TimePoint::origin() + 8_h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.cost_of_adding(job, 90_min, 30_min, TimePoint::origin()));
  }
}
BENCHMARK(BM_NalCostOfAdding)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

void BM_SchedulerEnqueuePop(benchmark::State& state) {
  Rng rng{3};
  sched::SjfScheduler s;
  for (auto _ : state) {
    auto spec = make_job(rng, Duration::minutes(rng.uniform_int(60, 240)));
    s.enqueue({spec, spec.ert, TimePoint::origin(), 0});
    if (s.size() > 32) benchmark::DoNotOptimize(s.pop_next());
  }
}
BENCHMARK(BM_SchedulerEnqueuePop);

void BM_ReschedulingCandidates(benchmark::State& state) {
  Rng rng{4};
  sched::FcfsScheduler s;
  fill_queue(s, rng, 32, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.rescheduling_candidates(2, 30_min, TimePoint::origin()));
  }
}
BENCHMARK(BM_ReschedulingCandidates);

void BM_FloodPickTargets(benchmark::State& state) {
  Rng rng{5};
  overlay::Topology topo = overlay::bootstrap_random(500, 4.0, rng);
  overlay::FloodRelay relay{topo, rng.fork(1)};
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(relay.pick_targets(NodeId{i++ % 500}, 4));
  }
}
BENCHMARK(BM_FloodPickTargets);

void BM_FloodMarkSeen(benchmark::State& state) {
  Rng rng{6};
  overlay::Topology topo;
  overlay::FloodRelay relay{topo, rng.fork(1)};
  const Uuid flood = Uuid::generate(rng);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(relay.mark_seen(NodeId{i++}, flood));
  }
}
BENCHMARK(BM_FloodMarkSeen);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator;
    Rng rng{7};
    for (int i = 0; i < 10000; ++i) {
      simulator.schedule_after(rng.uniform_duration(0_s, 1_h), [] {});
    }
    state.ResumeTiming();
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

void BM_TopologyBfsDistance(benchmark::State& state) {
  Rng rng{8};
  overlay::Topology topo = overlay::bootstrap_random(500, 4.0, rng);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topo.distance(NodeId{i % 500}, NodeId{(i * 13 + 7) % 500}));
    ++i;
  }
}
BENCHMARK(BM_TopologyBfsDistance);

void BM_RngNormal(benchmark::State& state) {
  Rng rng{9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal(150.0, 75.0));
  }
}
BENCHMARK(BM_RngNormal);

}  // namespace
