// Ablation (not in the paper): how the flood parameters trade discovery
// quality against traffic. Sweeps the REQUEST flood (hops x fanout) and the
// INFORM flood fanout around the paper's choices (9x4 and 8x2), which the
// authors state "guarantee a near optimal operation without flooding the
// network" — this bench quantifies that claim.
#include "bench_common.hpp"

#include "workload/aggregate.hpp"

namespace {

struct Variant {
  std::string label;
  std::size_t request_hops;
  std::size_t request_fanout;
  std::size_t inform_hops;
  std::size_t inform_fanout;
};

}  // namespace

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Ablation", "Flood Parameters (REQUEST hops x fanout, INFORM fanout)");

  const Variant variants[] = {
      {"request 5x2 (starved)", 5, 2, 8, 2},
      {"request 9x2", 9, 2, 8, 2},
      {"request 5x4", 5, 4, 8, 2},
      {"request 9x4 (paper)", 9, 4, 8, 2},
      {"request 9x6 (greedy)", 9, 6, 8, 2},
      {"inform 8x1", 9, 4, 8, 1},
      {"inform 8x4", 9, 4, 8, 4},
  };

  metrics::Table table{{"variant", "completion[min]", "waiting[min]",
                        "REQUEST MiB", "INFORM MiB", "retries", "resched"}};
  double paper_completion = 0.0, starved_completion = 0.0;
  double paper_request_mib = 0.0, greedy_request_mib = 0.0;

  for (const Variant& v : variants) {
    workload::ScenarioConfig cfg = bench_scenario("iMixed");
    cfg.aria.request_hops = v.request_hops;
    cfg.aria.request_fanout = v.request_fanout;
    cfg.aria.inform_hops = v.inform_hops;
    cfg.aria.inform_fanout = v.inform_fanout;
    std::fprintf(stderr, "[bench] running %s x%zu ...\n", v.label.c_str(),
                 bench_runs());
    const auto results =
        workload::run_scenario_repeated(cfg, bench_runs(), bench_seed());
    const auto s = workload::summarize(cfg, results);

    double retries = 0.0;
    for (const auto& r : results) {
      for (const auto& [id, rec] : r.tracker.records()) {
        retries += static_cast<double>(rec.retries);
      }
    }
    retries /= static_cast<double>(results.size());

    table.add_row({v.label, metrics::Table::num(s.completion_minutes.mean()),
                   metrics::Table::num(s.waiting_minutes.mean()),
                   metrics::Table::num(s.traffic_mib_mean("REQUEST")),
                   metrics::Table::num(s.traffic_mib_mean("INFORM")),
                   metrics::Table::num(retries, 0),
                   metrics::Table::num(s.reschedules.mean(), 0)});

    if (v.label.find("paper") != std::string::npos) {
      paper_completion = s.completion_minutes.mean();
      paper_request_mib = s.traffic_mib_mean("REQUEST");
    }
    if (v.label.find("starved") != std::string::npos) {
      starved_completion = s.completion_minutes.mean();
    }
    if (v.label.find("greedy") != std::string::npos) {
      greedy_request_mib = s.traffic_mib_mean("REQUEST");
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n";

  shape("paper's 9x4 flood beats a starved 5x2 flood on completion time",
        paper_completion < starved_completion);
  shape("fanout 6 adds little coverage for its extra traffic (<= 40% more)",
        greedy_request_mib <= paper_request_mib * 1.4);
  return 0;
}
