// Figure 3: idle nodes over time (overall grid utilization). Paper
// reading: dynamic rescheduling reduces the number of idle nodes during the
// busy phase by roughly 100 (of 500), and all i-scenarios behave alike.
#include "bench_common.hpp"

#include <iterator>

namespace {
double busy_phase_mean(const aria::metrics::Series& s, double from_h,
                       double to_h) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : s.points()) {
    if (p.t_hours < from_h || p.t_hours > to_h) continue;
    sum += p.value;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}
}  // namespace

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Figure 3", "Idle Nodes (empty scheduling queue, not executing)");
  const char* names[] = {"FCFS", "SJF", "Mixed", "iFCFS", "iSJF", "iMixed"};
  std::vector<workload::ScenarioSummary> summaries;
  std::vector<double> gini;  // busy-time load balance per scenario
  for (const char* n : names) {
    const auto cfg = bench_scenario(n);
    const auto results =
        workload::run_scenario_repeated(cfg, bench_runs(), bench_seed());
    double g = 0.0;
    for (const auto& r : results) g += r.busy_time_balance().gini;
    gini.push_back(g / static_cast<double>(results.size()));
    summaries.push_back(workload::summarize(cfg, results));
    std::fprintf(stderr, "[bench] %s done\n", n);
  }

  std::vector<metrics::Series> series;
  for (auto& s : summaries) series.push_back(s.idle_series.downsampled(30));
  std::cout << "\nidle nodes vs time (mean over runs):\n";
  metrics::print_series_matrix(std::cout, series, 40);

  const auto cfg = bench_scenario("Mixed");
  std::cout << "\njob submissions run from "
            << (TimePoint::origin() + cfg.submission_start).to_string()
            << " to " << cfg.submission_end().to_string() << "\n\n";

  auto by = [&](const char* n) -> const workload::ScenarioSummary& {
    for (const auto& s : summaries) {
      if (s.name == n) return s;
    }
    std::abort();
  };
  // Busy window: from submissions start to a few hours past their end.
  const double from_h = cfg.submission_start.to_hours();
  const double to_h = cfg.submission_end().to_hours() + 2.0;
  const double mixed = busy_phase_mean(by("Mixed").idle_series, from_h, to_h);
  const double imixed = busy_phase_mean(by("iMixed").idle_series, from_h, to_h);
  const double sjf = busy_phase_mean(by("SJF").idle_series, from_h, to_h);
  const double isjf = busy_phase_mean(by("iSJF").idle_series, from_h, to_h);
  const double ifcfs = busy_phase_mean(by("iFCFS").idle_series, from_h, to_h);

  std::cout << "busy-phase mean idle nodes: Mixed=" << mixed
            << " iMixed=" << imixed << " SJF=" << sjf << " iSJF=" << isjf
            << " iFCFS=" << ifcfs << "\n";
  std::cout << "busy-time Gini (lower = better balanced):";
  for (std::size_t i = 0; i < std::size(names); ++i) {
    std::cout << " " << names[i] << "=" << metrics::Table::num(gini[i], 3);
  }
  std::cout << "\n\n";

  shape("iMixed keeps clearly fewer nodes idle than Mixed", imixed < mixed - 20);
  shape("iSJF keeps clearly fewer nodes idle than SJF", isjf < sjf - 20);
  shape("all rescheduling scenarios behave alike (spread < 40 nodes)",
        std::abs(imixed - isjf) < 40 && std::abs(imixed - ifcfs) < 40);
  return 0;
}
