// Ablation (paper future work §VI): "experiments with different types of
// peer-to-peer overlay networks in order to gain a better understanding of
// its correlation to the meta-scheduling performance."
//
// Runs iMixed on three overlay families of equal average degree:
//   blatant      — BLATANT-S self-organized (the paper's overlay)
//   random-k     — unstructured k-regular random graph (Gnutella-style)
//   small-world  — Watts–Strogatz ring lattice with 10% rewiring
#include "bench_common.hpp"

#include "workload/aggregate.hpp"

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Ablation", "Overlay Families (iMixed on equal-degree topologies)");

  struct Family {
    std::string label;
    workload::ScenarioConfig::OverlayFamily family;
  };
  const Family families[] = {
      {"blatant (paper)", workload::ScenarioConfig::OverlayFamily::kBlatant},
      {"random-k", workload::ScenarioConfig::OverlayFamily::kRandomRegular},
      {"small-world b=0.1",
       workload::ScenarioConfig::OverlayFamily::kSmallWorld},
  };

  metrics::Table table{{"overlay", "APL", "degree", "completion[min]",
                        "waiting[min]", "REQUEST MiB", "retries"}};
  double blatant_completion = 0.0, worst_completion = 0.0;
  for (const Family& f : families) {
    workload::ScenarioConfig cfg = bench_scenario("iMixed");
    cfg.overlay_family = f.family;
    std::fprintf(stderr, "[bench] running %s x%zu ...\n", f.label.c_str(),
                 bench_runs());
    const auto results =
        workload::run_scenario_repeated(cfg, bench_runs(), bench_seed());
    const auto s = workload::summarize(cfg, results);
    double retries = 0.0;
    for (const auto& r : results) {
      for (const auto& [id, rec] : r.tracker.records()) {
        retries += static_cast<double>(rec.retries);
      }
    }
    retries /= static_cast<double>(results.size());
    table.add_row({f.label,
                   metrics::Table::num(s.overlay_avg_path_length.mean(), 2),
                   metrics::Table::num(s.overlay_avg_degree.mean(), 2),
                   metrics::Table::num(s.completion_minutes.mean()),
                   metrics::Table::num(s.waiting_minutes.mean()),
                   metrics::Table::num(s.traffic_mib_mean("REQUEST")),
                   metrics::Table::num(retries, 0)});
    if (f.family == workload::ScenarioConfig::OverlayFamily::kBlatant) {
      blatant_completion = s.completion_minutes.mean();
    }
    worst_completion = std::max(worst_completion, s.completion_minutes.mean());
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n";

  shape("meta-scheduling performance is overlay-robust (spread < 15%)",
        worst_completion < blatant_completion * 1.15);
  return 0;
}
