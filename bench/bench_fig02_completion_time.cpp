// Figure 2: average job completion time split into waiting + execution for
// FCFS/SJF/Mixed ± dynamic rescheduling. Paper reading: rescheduling
// reduces completion time everywhere except (already-optimal) FCFS, the
// gain comes from the waiting share, and execution time grows slightly.
#include "bench_common.hpp"

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Figure 2", "Job Completion Time (waiting + execution, minutes)");
  const char* names[] = {"FCFS", "SJF", "Mixed", "iFCFS", "iSJF", "iMixed"};
  std::vector<workload::ScenarioSummary> summaries;
  for (const char* n : names) summaries.push_back(run(n));

  metrics::Table table{{"scenario", "waiting[min]", "execution[min]",
                        "completion[min]", "stddev", "reschedules"}};
  for (const auto& s : summaries) {
    table.add_row({s.name, metrics::Table::num(s.waiting_minutes.mean()),
                   metrics::Table::num(s.execution_minutes.mean()),
                   metrics::Table::num(s.completion_minutes.mean()),
                   metrics::Table::num(s.completion_minutes.stddev(), 2),
                   metrics::Table::num(s.reschedules.mean(), 0)});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n";

  auto by = [&](const char* n) -> const workload::ScenarioSummary& {
    for (const auto& s : summaries) {
      if (s.name == n) return s;
    }
    std::abort();
  };
  shape("iSJF completion < SJF completion",
        by("iSJF").completion_minutes.mean() <
            by("SJF").completion_minutes.mean());
  shape("iMixed completion < Mixed completion",
        by("iMixed").completion_minutes.mean() <
            by("Mixed").completion_minutes.mean());
  shape("rescheduling reduces the waiting share (iMixed vs Mixed)",
        by("iMixed").waiting_minutes.mean() <
            by("Mixed").waiting_minutes.mean());
  shape("rescheduling scenarios show larger execution times (iMixed >= Mixed)",
        by("iMixed").execution_minutes.mean() >=
            by("Mixed").execution_minutes.mean() * 0.98);
  shape("FCFS stays near-optimal: |iFCFS - FCFS| small",
        std::abs(by("iFCFS").completion_minutes.mean() -
                 by("FCFS").completion_minutes.mean()) <
            by("FCFS").completion_minutes.mean() * 0.15);
  return 0;
}
