// Figure 1: completed jobs over time for FCFS/SJF/Mixed with and without
// dynamic rescheduling. The paper's plot shows iSJF/iMixed catching up to
// the near-optimal FCFS curve, with plain SJF/Mixed trailing.
#include "bench_common.hpp"

int main() {
  using namespace aria;
  using namespace aria::bench;

  header("Figure 1", "Completed Jobs");
  const char* names[] = {"FCFS", "SJF", "Mixed", "iFCFS", "iSJF", "iMixed"};
  std::vector<workload::ScenarioSummary> summaries;
  for (const char* n : names) summaries.push_back(run(n));

  std::vector<metrics::Series> curves;
  for (auto& s : summaries) curves.push_back(s.completed_curve);
  std::cout << "\ncompleted jobs vs time (mean over runs):\n";
  metrics::print_series_matrix(std::cout, curves, 40);

  // The submission window (vertical bars in the paper).
  const auto cfg = bench_scenario("Mixed");
  std::cout << "\njob submissions run from "
            << (TimePoint::origin() + cfg.submission_start).to_string()
            << " to " << cfg.submission_end().to_string() << "\n\n";

  auto by = [&](const char* n) -> const workload::ScenarioSummary& {
    for (const auto& s : summaries) {
      if (s.name == n) return s;
    }
    std::abort();
  };
  // Shape checks against the paper's reading of Fig. 1. The discriminating
  // region is the drain phase after submissions end (~3h..12h): a faster
  // schedule shows a uniformly higher curve there.
  auto drain_mean = [](const workload::ScenarioSummary& s) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& p : s.completed_curve.points()) {
      if (p.t_hours < 3.0 || p.t_hours > 12.0) continue;
      sum += p.value;
      ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  };
  shape("iSJF completes jobs faster than SJF",
        drain_mean(by("iSJF")) > drain_mean(by("SJF")));
  shape("iMixed completes jobs faster than Mixed",
        drain_mean(by("iMixed")) > drain_mean(by("Mixed")));
  shape("plain FCFS is comparatively near-optimal (not slower than Mixed)",
        drain_mean(by("FCFS")) >= drain_mean(by("Mixed")) * 0.98);
  shape("every scenario eventually completes the full workload",
        [&] {
          for (const auto& s : summaries) {
            if (s.completed_jobs.mean() < s.completed_jobs.max()) continue;
          }
          for (const auto& s : summaries) {
            if (s.completed_jobs.mean() + 0.5 <
                static_cast<double>(bench_scenario("Mixed").job_count)) {
              return false;
            }
          }
          return true;
        }());
  return 0;
}
